//! Simulation scenario configuration, with defaults matching Section IV of
//! the paper.

use crate::energy::EnergyModel;
use crate::geometry::{Area, Point};
use crate::time::SimDuration;
use crate::traffic::TrafficPattern;

/// How actuators are positioned in the area.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ActuatorPlacement {
    /// The paper's 5-actuator scenario: four actuators at the quarter
    /// points plus one at the center, forming 4 triangular cells.
    Quincunx,
    /// Uniformly random positions.
    UniformRandom,
    /// Explicit coordinates.
    Explicit(Vec<Point>),
}

/// How sensors are scattered over the area.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SensorPlacement {
    /// I.i.d. uniform over the whole area.
    UniformArea,
    /// The paper's deployment: "200 sensors were i.i.d distributed around
    /// the actuators" — each sensor picks a random actuator and a uniform
    /// offset within a disc of this radius (clamped to the area).
    AroundActuators {
        /// Disc radius around the chosen actuator, meters.
        radius: f64,
    },
}

/// Traffic generation: every `round_interval`, `sources_per_round` random
/// live sensors each stream packets at `rate_bps` until the next round
/// (Section IV: "Every 10 seconds, we randomly chose 5 source nodes, which
/// transmit data to their nearby actuators at the rate of 1 Mbps").
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrafficConfig {
    /// Interval between source re-selection rounds.
    pub round_interval: SimDuration,
    /// Number of simultaneous sources per round.
    pub sources_per_round: usize,
    /// Application sending rate per source, bits/second.
    pub rate_bps: f64,
    /// Application packet size, bits.
    pub packet_bits: u32,
    /// The workload shape. [`TrafficPattern::Paper`] (the default) keeps
    /// the Section IV trickle byte-identical; every other pattern makes all
    /// alive sensors sources with hash-assigned destination sensors.
    pub pattern: TrafficPattern,
    /// Aggregate open-loop injection rate for matrix patterns, packets per
    /// second across the whole network; `0.0` (the default) falls back to
    /// the per-source `rate_bps` semantics. Ignored by the paper trickle.
    pub offered_pps: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            round_interval: SimDuration::from_secs(10),
            sources_per_round: 5,
            rate_bps: 1_000_000.0,
            packet_bits: 8_000,
            pattern: TrafficPattern::Paper,
            offered_pps: 0.0,
        }
    }
}

/// Node mobility: random waypoint without pause (Section IV: "each sensor
/// randomly selects a destination point and moves to that point with a
/// speed randomly selected from [0, max]").
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MobilityConfig {
    /// Minimum node speed, m/s.
    pub min_speed: f64,
    /// Maximum node speed, m/s (the figures' x-axis is `max/2`, the mean).
    pub max_speed: f64,
    /// Position-update granularity.
    pub tick: SimDuration,
    /// The movement model.
    pub model: MobilityModel,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            min_speed: 0.0,
            max_speed: 3.0,
            tick: SimDuration::from_secs(1),
            model: MobilityModel::RandomWaypoint,
        }
    }
}

/// How protocols learn about node failures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultModel {
    /// Protocols may consult the global fault oracle
    /// ([`Ctx::is_faulty`](crate::Ctx::is_faulty) /
    /// [`Ctx::link_ok`](crate::Ctx::link_ok)) at every hop: a perfect,
    /// zero-latency failure detector. This overstates robustness but keeps
    /// runs cheap and deterministic; it is the historical default.
    #[default]
    Oracle,
    /// Failures must be *discovered*: protocols route on local suspicion
    /// built from ACK timeouts ([`Ctx::send_acked`](crate::Ctx::send_acked))
    /// and heartbeat silence, as in the paper's ns-2 setup. Oracle
    /// consultations are counted in
    /// [`RunSummary::oracle_queries`](crate::RunSummary::oracle_queries) so
    /// tests can assert the data path stayed honest.
    Discovered,
    /// [`Discovered`](FaultModel::Discovered) plus an active adversary: a
    /// seeded fraction of sensors is *compromised* and misbehaves per
    /// [`ByzantineConfig`] — misrouting frames, selectively dropping data
    /// while still acknowledging it, forging ACKs, and slandering healthy
    /// neighbors in suspicion gossip. Compromised nodes are physically
    /// alive (the fault oracle does not flag them); defenses must come
    /// from the reputation-weighted `FailureView` (hosted by the
    /// `refer-proto` crate since the sans-io split). All adversary
    /// decisions are drawn from the per-node simulator RNG streams, so
    /// runs stay deterministic per seed and thread-invariant under
    /// [`Engine::Sharded`].
    Byzantine,
}

/// Adversary behavior knobs for [`FaultModel::Byzantine`]. All
/// probabilities are per-decision and drawn from the acting node's
/// simulator RNG stream.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ByzantineConfig {
    /// Fraction of sensors compromised at t=0, in `[0, 1]`. The set is
    /// drawn once from the master RNG after placement and stays fixed for
    /// the run (compromise is a property of the node, not a rotating
    /// fault).
    pub attacker_fraction: f64,
    /// Probability that a compromised *sender* redirects a unicast frame
    /// to a random physical neighbor instead of the intended next hop.
    pub misroute_prob: f64,
    /// Probability that a compromised *receiver* silently discards a
    /// delivered frame instead of processing it.
    pub drop_prob: f64,
    /// When `true`, a compromised receiver that drops an acknowledged
    /// frame still returns the ACK — the sender believes the hop
    /// succeeded and never retransmits.
    pub forge_acks: bool,
    /// Probability per gossip opportunity that a compromised node
    /// fabricates an accusation against a healthy neighbor.
    pub slander_prob: f64,
}

impl Default for ByzantineConfig {
    fn default() -> Self {
        ByzantineConfig {
            attacker_fraction: 0.0,
            misroute_prob: 0.25,
            drop_prob: 0.5,
            forge_acks: true,
            slander_prob: 0.25,
        }
    }
}

/// Fault injection: every `rotation`, the previous faulty set recovers and
/// `count` random sensors break down (Section IV-B).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultConfig {
    /// Number of simultaneously faulty sensors.
    pub count: usize,
    /// How often the faulty set is re-drawn.
    pub rotation: SimDuration,
    /// How protocols are allowed to learn about the faulty set.
    pub model: FaultModel,
    /// When `true`, a sensor whose battery reaches zero breaks down
    /// permanently (it is never recovered by fault rotation). Off by
    /// default: the paper's figures do not kill depleted nodes.
    pub battery_death: bool,
    /// Adversary knobs, active only under [`FaultModel::Byzantine`].
    pub byzantine: ByzantineConfig,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            count: 0,
            rotation: SimDuration::from_secs(10),
            model: FaultModel::Oracle,
            battery_death: false,
            byzantine: ByzantineConfig::default(),
        }
    }
}

/// How link success depends on distance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LinkModel {
    /// Classic unit disk: frames within the range always arrive, frames
    /// beyond it never do (the paper's model).
    #[default]
    UnitDisk,
    /// Log-distance shadowing approximation: delivery probability decays
    /// smoothly through the nominal range following a logistic curve of
    /// the given transition width (meters). At `distance == range` the
    /// probability is 0.5; links are considered "up" (MAC-visible) while
    /// the probability is at least 0.5.
    Shadowed {
        /// Width of the success-probability transition band, meters.
        fade_width: f64,
    },
}

impl LinkModel {
    /// Probability that a frame sent over `distance` with nominal `range`
    /// is received.
    pub fn delivery_prob(self, distance: f64, range: f64) -> f64 {
        match self {
            LinkModel::UnitDisk => {
                if distance <= range {
                    1.0
                } else {
                    0.0
                }
            }
            LinkModel::Shadowed { fade_width } => {
                let w = fade_width.max(1e-9);
                1.0 / (1.0 + ((distance - range) / w).exp())
            }
        }
    }

    /// Whether the MAC would report the link as usable (expected-case
    /// reachability): delivery probability at least one half.
    pub fn link_up(self, distance: f64, range: f64) -> bool {
        self.delivery_prob(distance, range) >= 0.5
    }

    /// The largest distance at which a link with nominal `range` is still
    /// usable ([`LinkModel::link_up`], i.e. delivery probability ≥ 0.5).
    ///
    /// The spatial neighbor index sizes its cells from this bound — *not*
    /// from the nominal range — so a model whose usable distance exceeded
    /// the nominal range could never make the grid miss a linkable pair.
    /// For both current models the two coincide: the unit disk cuts off at
    /// `range`, and the shadowed logistic crosses 0.5 exactly at `range`
    /// regardless of `fade_width` (a regression test pins this boundary
    /// under wide transition bands).
    ///
    /// [`RadioConfig::link_pdr`] deliberately does *not* enter this bound
    /// (or [`LinkModel::link_up`]): residual per-link loss models frames
    /// that retransmissions recover, not links the MAC cannot see.
    pub fn max_usable_distance(self, range: f64) -> f64 {
        match self {
            LinkModel::UnitDisk => range,
            LinkModel::Shadowed { .. } => range,
        }
    }

    /// [`LinkModel::delivery_prob`] combined with a residual per-link
    /// packet-drop rate `pdr ∈ [0, 1]`: each frame additionally survives
    /// with probability `1 - pdr`, independent of distance.
    pub fn delivery_prob_with_pdr(self, distance: f64, range: f64, pdr: f64) -> f64 {
        self.delivery_prob(distance, range) * (1.0 - pdr.clamp(0.0, 1.0))
    }
}

/// How [`Ctx`](crate::Ctx) neighborhood queries resolve candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NeighborIndex {
    /// Uniform spatial grid with cell side ≥ the maximum usable radio
    /// range: a query inspects only the 3×3 cell block around the node
    /// (O(1) amortized). Results are bit-identical to the scan — `trace
    /// verify` proves the event multisets match.
    #[default]
    Grid,
    /// Full scan over the node table (O(n) per query). Kept as the
    /// reference implementation the grid is verified against.
    LinearScan,
}

/// How Kautz-routed protocols pick the next hop toward a destination
/// identifier.
///
/// The strategy is a *scenario* knob (like [`FaultModel`]) rather than a
/// protocol constructor argument so every Kautz-based system in a sweep —
/// REFER's intra-cell forwarding, the Kautz overlay baseline, the fabric
/// used by the heavy-traffic workloads — switches together.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RoutingStrategy {
    /// The paper's greedy shortest protocol (Section III-C1) with the
    /// Theorem 3.8 disjoint-path planner around failures. Minimizes hops,
    /// but under all-to-all load the overlap shortcut concentrates pairs
    /// onto hot arcs.
    #[default]
    Shortest,
    /// Faber–Streib regular routing: append the destination's digits in
    /// order (at most one detour hop). Every route costs `k` or `k + 1`
    /// hops, and the induced per-arc load is uniform — the better choice
    /// under heavy all-to-all traffic.
    Regular,
}

/// Which priority-queue implementation orders the event loop.
///
/// Mirrors [`NeighborIndex`]: both implementations pop events in exactly
/// the same `(at, seq)` order, so every run is bit-identical under either
/// — `trace verify` proves the event multisets and JSONL streams match.
/// The wheel is the default because its bucketed inserts and bitmap-driven
/// pops are O(1) where the heap pays O(log n) sifts of full event
/// payloads; the heap stays available as the verified reference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scheduler {
    /// Hierarchical timing wheel (`wheel` module): 8 levels × 256 buckets
    /// over the microsecond clock, cascading overflow, per-bucket `seq`
    /// ordering.
    #[default]
    Wheel,
    /// `BinaryHeap` reference implementation.
    Heap,
}

/// Which event-loop engine executes the run.
///
/// Mirrors [`NeighborIndex`]: the serial loop stays the default and the
/// verified reference, the sharded engine is opt-in per run. The two
/// engines define *different* (each internally deterministic) random
/// streams — the serial loop draws every choice from one master RNG in
/// global event order, which no parallel execution can reproduce — so a
/// sharded run is compared against the sharded engine at 1 worker thread
/// (its own serial reference), not against [`Engine::Serial`] bit-for-bit.
/// See `shard` module docs for the full determinism argument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Engine {
    /// The single-threaded discrete-event loop ([`runner::run`]
    /// (crate::runner::run)): one global event heap, one master RNG.
    #[default]
    Serial,
    /// The sharded windowed engine ([`shard::run_sharded`]
    /// (crate::shard::run_sharded)): grid-cell shards stepped in
    /// conservative time windows on worker threads. Output is a pure
    /// function of the config — independent of `threads`.
    Sharded(ShardedConfig),
}

/// Tuning for [`Engine::Sharded`]. `0` means "pick automatically"
/// everywhere, and every automatic choice depends only on the topology —
/// never on the host — so results are reproducible across machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ShardedConfig {
    /// Number of logical shards (rectangular tiles of grid cells). The
    /// event semantics depend on this value; 0 picks a topology-derived
    /// default. Capped at the number of grid cells.
    pub shards: usize,
    /// Worker threads executing the shards. Purely an execution detail:
    /// any value produces byte-identical traces and summaries. 0 uses
    /// the host's available parallelism (capped at the shard count).
    pub threads: usize,
    /// Synchronization window length, microseconds. Must not exceed the
    /// minimum cross-node event latency (`radio.mac_overhead`) or the
    /// conservative lookahead argument breaks — validated at run start.
    /// 0 uses `mac_overhead` itself, the largest safe window.
    pub window_micros: u64,
}

/// How sensors move between mobility ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MobilityModel {
    /// Random waypoint without pause (the paper's model): pick a uniform
    /// destination, walk to it at a uniform speed, repeat.
    #[default]
    RandomWaypoint,
    /// Gauss-Markov: velocity evolves as an AR(1) process with memory
    /// `alpha` in `[0, 1]` (1 = straight-line ballistic, 0 = fully random
    /// each tick); reflects off the area boundary.
    GaussMarkov {
        /// Velocity memory coefficient.
        alpha: f64,
    },
}

/// Radio/MAC timing model: per-hop service time plus a uniformly random
/// contention jitter. Transmissions queue behind the sender's (and the
/// receiver's) earlier traffic, which is what congests hot relays.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RadioConfig {
    /// Channel bitrate, bits/second (802.11b default: 11 Mb/s).
    pub bitrate_bps: f64,
    /// Fixed per-frame MAC overhead added to the service time.
    pub mac_overhead: SimDuration,
    /// Upper bound of the uniform random contention jitter per hop.
    pub max_jitter: SimDuration,
    /// Fraction of a frame's service time that also occupies the
    /// *receiver*'s radio (models the shared medium around hot nodes).
    pub receiver_occupancy: f64,
    /// Maximum radio backlog: a frame offered to a node whose transmit
    /// queue already exceeds this horizon is tail-dropped (bounded MAC
    /// buffers). The sender is not notified — the loss is silent, as with
    /// a real interface-queue overflow.
    pub max_queue: SimDuration,
    /// The distance/success link model.
    pub link: LinkModel,
    /// Residual per-link packet-drop rate in `[0, 1]`: every frame
    /// (unicast, ACK, broadcast leg) is additionally lost with this
    /// probability, independent of distance and of any attacker. Lossy
    /// links thus exist on their own; the link-layer ACK machinery is what
    /// recovers from them. Does not affect MAC-visible reachability
    /// ([`LinkModel::link_up`]) or the spatial grid's cell sizing.
    pub link_pdr: f64,
    /// Link-layer ACK timeout for [`Ctx::send_acked`](crate::Ctx::send_acked)
    /// frames, counted from the moment the frame leaves the sender's radio
    /// (so a long interface queue does not trigger spurious expiries).
    pub ack_timeout: SimDuration,
    /// Maximum number of *re*transmissions after the initial attempt of an
    /// acknowledged frame before the sender gives up and reports the frame
    /// expired.
    pub max_retries: u32,
    /// Exponential-backoff factor applied to `ack_timeout` per retry
    /// (attempt `n` waits `ack_timeout * retry_backoff^n`).
    pub retry_backoff: f64,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            bitrate_bps: 11_000_000.0,
            mac_overhead: SimDuration::from_micros(500),
            max_jitter: SimDuration::from_micros(1_500),
            receiver_occupancy: 1.0,
            max_queue: SimDuration::from_millis(1_500),
            link: LinkModel::UnitDisk,
            link_pdr: 0.0,
            ack_timeout: SimDuration::from_millis(10),
            max_retries: 3,
            retry_backoff: 2.0,
        }
    }
}

/// Complete scenario description. `SimConfig::paper()` reproduces the
/// evaluation defaults; `SimConfig::smoke()` is a fast variant for tests.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig {
    /// Deployment area.
    pub area: Area,
    /// Number of sensors.
    pub sensors: usize,
    /// Number of actuators.
    pub actuators: usize,
    /// Sensor transmission range, meters.
    pub sensor_range: f64,
    /// Actuator transmission range, meters.
    pub actuator_range: f64,
    /// Actuator placement policy.
    pub placement: ActuatorPlacement,
    /// Sensor placement policy.
    pub sensor_placement: SensorPlacement,
    /// Initial sensor battery, Joules (randomized ±20% per node).
    pub initial_battery: f64,
    /// Traffic generation parameters.
    pub traffic: TrafficConfig,
    /// Mobility parameters.
    pub mobility: MobilityConfig,
    /// Fault-injection parameters.
    pub faults: FaultConfig,
    /// Radio/MAC timing parameters.
    pub radio: RadioConfig,
    /// Energy prices.
    pub energy: EnergyModel,
    /// Metrics start after this much simulated time.
    pub warmup: SimDuration,
    /// Measured simulation length (total run = warmup + duration).
    pub duration: SimDuration,
    /// Packets count toward QoS throughput only if delivered within this
    /// deadline (paper: 0.6 s).
    pub qos_deadline: SimDuration,
    /// How neighborhood queries resolve candidates (spatial grid by
    /// default; the linear scan is the verified-against reference).
    pub neighbor_index: NeighborIndex,
    /// Which event-loop engine executes the run (serial by default; the
    /// sharded engine is opt-in and verified against itself at 1 thread).
    pub engine: Engine,
    /// Which priority-queue implementation orders events (timing wheel by
    /// default; the binary heap is the verified-against reference — both
    /// pop in identical `(at, seq)` order).
    pub scheduler: Scheduler,
    /// How Kautz-routed protocols pick next hops (greedy shortest by
    /// default; regular routing equalizes load under traffic matrices).
    pub routing: RoutingStrategy,
    /// Master RNG seed; every random choice in the run derives from it.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's scenario: 500 m x 500 m, 5 actuators (quincunx), 200
    /// sensors, ranges 100/250 m, 1 Mb/s sources every 10 s, warmup 100 s,
    /// 1000 s measured, QoS deadline 0.6 s, 2/0.75 J per packet.
    pub fn paper() -> Self {
        SimConfig {
            area: Area::new(500.0, 500.0),
            sensors: 200,
            actuators: 5,
            sensor_range: 100.0,
            actuator_range: 250.0,
            placement: ActuatorPlacement::Quincunx,
            sensor_placement: SensorPlacement::AroundActuators { radius: 150.0 },
            initial_battery: 10_000.0,
            traffic: TrafficConfig::default(),
            mobility: MobilityConfig::default(),
            faults: FaultConfig::default(),
            radio: RadioConfig::default(),
            energy: EnergyModel::PAPER,
            warmup: SimDuration::from_secs(100),
            duration: SimDuration::from_secs(1000),
            qos_deadline: SimDuration::from_secs_f64(0.6),
            neighbor_index: NeighborIndex::default(),
            engine: Engine::default(),
            scheduler: Scheduler::default(),
            routing: RoutingStrategy::default(),
            seed: 1,
        }
    }

    /// A scaled-down scenario for unit/integration tests: same geometry,
    /// lighter traffic, 60 s measured after a 30 s warmup.
    pub fn smoke() -> Self {
        let mut cfg = Self::paper();
        cfg.sensors = 120;
        cfg.traffic.rate_bps = 80_000.0;
        cfg.warmup = SimDuration::from_secs(30);
        cfg.duration = SimDuration::from_secs(60);
        cfg
    }

    /// Total simulated time (warmup + measured duration).
    pub fn total_time(&self) -> SimDuration {
        self.warmup + self.duration
    }

    /// Number of packets each source emits per traffic round.
    pub fn packets_per_round(&self) -> u64 {
        let bits = self.traffic.rate_bps * self.traffic.round_interval.as_secs_f64();
        (bits / self.traffic.packet_bits as f64).floor() as u64
    }

    /// Inter-packet gap at the configured application rate.
    pub fn packet_gap(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.traffic.packet_bits as f64 / self.traffic.rate_bps)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations (no nodes, zero bitrate, zero
    /// packet size) — configurations are code, not user input.
    pub fn validate(&self) {
        assert!(self.sensors > 0, "need at least one sensor");
        assert!(self.actuators > 0, "need at least one actuator");
        assert!(self.radio.bitrate_bps > 0.0, "bitrate must be positive");
        assert!(self.traffic.packet_bits > 0, "packets must be non-empty");
        assert!(self.sensor_range > 0.0 && self.actuator_range > 0.0);
        if let ActuatorPlacement::Explicit(points) = &self.placement {
            assert_eq!(points.len(), self.actuators, "explicit placement count mismatch");
        }
        assert!(
            (0.0..=1.0).contains(&self.radio.link_pdr),
            "link_pdr must be within [0, 1], got {}",
            self.radio.link_pdr
        );
        assert!(
            self.traffic.offered_pps.is_finite() && self.traffic.offered_pps >= 0.0,
            "offered_pps must be finite and non-negative, got {}",
            self.traffic.offered_pps
        );
        if let TrafficPattern::Hotspot { targets, skew } = self.traffic.pattern {
            assert!(targets > 0, "hotspot needs at least one target");
            assert!(
                (0.0..=1.0).contains(&skew),
                "hotspot skew must be within [0, 1], got {skew}"
            );
        }
        let byz = &self.faults.byzantine;
        assert!(
            (0.0..=1.0).contains(&byz.attacker_fraction),
            "attacker_fraction must be within [0, 1], got {}",
            byz.attacker_fraction
        );
        for (name, p) in [
            ("misroute_prob", byz.misroute_prob),
            ("drop_prob", byz.drop_prob),
            ("slander_prob", byz.slander_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be within [0, 1], got {p}");
        }
        if let Engine::Sharded(sharded) = self.engine {
            // Incompatible-knob rejections name the offending field and the
            // supported fallback so a failed run is actionable from the
            // panic message alone (wording pinned by tests below).
            let lookahead = self.radio.mac_overhead.as_micros();
            assert!(
                lookahead > 0,
                "`engine = Engine::Sharded` requires `radio.mac_overhead` > 0 us (it is \
                 the conservative cross-shard lookahead); raise `radio.mac_overhead` or \
                 fall back to `engine = Engine::Serial`"
            );
            assert!(
                sharded.window_micros <= lookahead,
                "`engine.window_micros` ({} us) exceeds the minimum cross-node event \
                 latency `radio.mac_overhead` ({} us); lower `engine.window_micros` to \
                 at most {} or fall back to `engine = Engine::Serial`",
                sharded.window_micros,
                lookahead,
                lookahead
            );
            assert!(
                !self.faults.battery_death,
                "`faults.battery_death = true` is not supported by `engine = \
                 Engine::Sharded`: fault rotation runs centrally and cannot observe \
                 per-shard battery depletion; set `faults.battery_death = false` or \
                 fall back to `engine = Engine::Serial`"
            );
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_iv() {
        let cfg = SimConfig::paper();
        assert_eq!(cfg.sensors, 200);
        assert_eq!(cfg.actuators, 5);
        assert_eq!(cfg.sensor_range, 100.0);
        assert_eq!(cfg.actuator_range, 250.0);
        assert_eq!(cfg.traffic.sources_per_round, 5);
        assert_eq!(cfg.traffic.pattern, TrafficPattern::Paper);
        assert_eq!(cfg.traffic.offered_pps, 0.0);
        assert_eq!(cfg.routing, RoutingStrategy::Shortest);
        assert_eq!(cfg.qos_deadline.as_secs_f64(), 0.6);
        assert_eq!(cfg.warmup.as_secs_f64(), 100.0);
        assert_eq!(cfg.duration.as_secs_f64(), 1000.0);
        cfg.validate();
    }

    #[test]
    fn packets_per_round_at_1mbps() {
        let cfg = SimConfig::paper();
        // 1 Mb/s for 10 s at 8000-bit packets = 1250 packets.
        assert_eq!(cfg.packets_per_round(), 1250);
        assert_eq!(cfg.packet_gap().as_micros(), 8_000);
    }

    #[test]
    #[should_panic(expected = "explicit placement count mismatch")]
    fn explicit_placement_must_match_count() {
        let mut cfg = SimConfig::paper();
        cfg.placement = ActuatorPlacement::Explicit(vec![Point::new(0.0, 0.0)]);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "hotspot skew must be within [0, 1]")]
    fn hotspot_skew_is_validated() {
        let mut cfg = SimConfig::paper();
        cfg.traffic.pattern = TrafficPattern::Hotspot {
            targets: 4,
            skew: 1.5,
        };
        cfg.validate();
    }

    #[test]
    fn smoke_is_lighter_than_paper() {
        let smoke = SimConfig::smoke();
        assert!(smoke.packets_per_round() < SimConfig::paper().packets_per_round());
        assert!(smoke.total_time() < SimConfig::paper().total_time());
    }

    /// Incompatible-knob rejections must be actionable: each message names
    /// the offending field AND the supported fallback (`Engine::Serial`).
    #[test]
    fn sharded_rejections_name_field_and_fallback() {
        let message = |cfg: SimConfig| -> String {
            let err = std::panic::catch_unwind(move || cfg.validate())
                .expect_err("config must be rejected");
            err.downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .expect("panic payload must be a string")
        };

        let mut cfg = SimConfig::smoke();
        cfg.engine = Engine::Sharded(ShardedConfig::default());
        cfg.faults.battery_death = true;
        let msg = message(cfg);
        assert!(msg.contains("`faults.battery_death = true`"), "field missing: {msg}");
        assert!(msg.contains("fall back to `engine = Engine::Serial`"), "fallback missing: {msg}");

        let mut cfg = SimConfig::smoke();
        cfg.engine = Engine::Sharded(ShardedConfig::default());
        cfg.radio.mac_overhead = SimDuration::ZERO;
        let msg = message(cfg);
        assert!(msg.contains("`radio.mac_overhead`"), "field missing: {msg}");
        assert!(msg.contains("fall back to `engine = Engine::Serial`"), "fallback missing: {msg}");

        let mut cfg = SimConfig::smoke();
        let too_wide = cfg.radio.mac_overhead.as_micros() + 1;
        cfg.engine =
            Engine::Sharded(ShardedConfig { shards: 0, threads: 1, window_micros: too_wide });
        let msg = message(cfg);
        assert!(msg.contains("`engine.window_micros`"), "field missing: {msg}");
        assert!(msg.contains("fall back to `engine = Engine::Serial`"), "fallback missing: {msg}");
    }
}
