//! The pure state-machine engine: explicit [`Input`]s in, buffered
//! [`Output`]s out, no I/O anywhere.
//!
//! [`EngineCore`] wraps a [`SansIo`] protocol and an [`IoCtx`] — a
//! [`ProtoCtx`] driver that answers topology queries from a frozen
//! [`WorldView`] snapshot and *buffers* every action the protocol takes.
//! A real shell (the `refer-node` UDP daemon) then executes the outputs:
//! `Send` becomes a datagram, `ArmTimer` a monotonic-clock deadline,
//! `Deliver`/`Trace` live JSONL trace records.
//!
//! The [`WorldView`] comes from replaying the simulator's deterministic
//! construction phase ([`wsan_sim::runner::construct`]): every daemon
//! process runs the identical seeded construction in-process and arrives
//! at the identical topology, rosters and embedding — which is how the
//! cluster shares the protocol core with the simulator without ever
//! serializing construction state onto the wire.

use crate::{ProtoCtx, SansIo};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt::Debug;
use wsan_sim::trace::TraceEvent;
use wsan_sim::{
    Ctx, DataId, DropReason, EnergyAccount, HopReason, Message, NodeId, NodeKind, Point,
    SimConfig, SimDuration, SimTime,
};

/// A frozen snapshot of the constructed world: the topology facts a
/// deployed node carries out of the deterministic construction replay.
#[derive(Debug, Clone)]
pub struct WorldView {
    cfg: SimConfig,
    kinds: Vec<NodeKind>,
    positions: Vec<Point>,
    ranges: Vec<f64>,
    batteries: Vec<f64>,
    sensors: Vec<NodeId>,
    actuators: Vec<NodeId>,
}

impl WorldView {
    /// Snapshots the world of a (typically just-constructed) simulator
    /// context.
    pub fn from_sim<P>(ctx: &Ctx<P>) -> Self {
        let n = ctx.node_count();
        let ids = || (0..n as u32).map(NodeId);
        WorldView {
            cfg: ctx.config().clone(),
            kinds: ids().map(|id| ctx.kind(id)).collect(),
            positions: ids().map(|id| ctx.position(id)).collect(),
            ranges: ids().map(|id| ctx.range(id)).collect(),
            batteries: ids().map(|id| ctx.battery(id)).collect(),
            sensors: ctx.sensor_ids().to_vec(),
            actuators: ctx.actuator_ids().to_vec(),
        }
    }

    /// The scenario configuration the snapshot was built under.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// The sensor ids.
    pub fn sensor_ids(&self) -> &[NodeId] {
        &self.sensors
    }

    /// The actuator ids.
    pub fn actuator_ids(&self) -> &[NodeId] {
        &self.actuators
    }
}

/// What the origin driver knows about an application packet it injected;
/// registered with the [`IoCtx`] before `on_app_data` runs so the
/// protocol's `data_*` queries resolve, exactly as the simulator's
/// origin-shard `DataRecord` does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// The originating node.
    pub origin: NodeId,
    /// Application payload size, bits.
    pub size_bits: u32,
    /// Workload-assigned destination, if the traffic pattern names one.
    pub dest: Option<NodeId>,
    /// When the packet was created.
    pub created: SimTime,
}

/// One event fed into the protocol core by a driver.
#[derive(Debug, Clone)]
pub enum Input<P> {
    /// A frame arrived for node `to` (a decoded datagram).
    Frame {
        /// Arrival time on the driver's clock.
        at: SimTime,
        /// The receiving node (owned by this driver).
        to: NodeId,
        /// The frame, exactly as [`wsan_sim::Protocol::on_message`] sees
        /// it.
        msg: Message<P>,
    },
    /// A previously armed timer fired.
    TimerFired {
        /// Fire time on the driver's clock.
        at: SimTime,
        /// The node the timer belongs to.
        node: NodeId,
        /// The tag passed to [`ProtoCtx::set_timer`].
        tag: u64,
    },
    /// The workload injected an application packet at `node`.
    AppData {
        /// Injection time on the driver's clock.
        at: SimTime,
        /// The source node (owned by this driver).
        node: NodeId,
        /// The packet id (globally unique; `refer-node` packs
        /// `origin << 32 | seq`, the sharded engine's scheme).
        packet: DataId,
        /// Payload size, bits.
        size_bits: u32,
        /// Workload-assigned destination, if any.
        dest: Option<NodeId>,
    },
    /// Clock advance with nothing else to report (keeps `now` honest for
    /// drivers that batch).
    Tick {
        /// The driver's current time.
        at: SimTime,
    },
}

impl<P> Input<P> {
    /// The driver timestamp carried by this input.
    pub fn at(&self) -> SimTime {
        match self {
            Input::Frame { at, .. }
            | Input::TimerFired { at, .. }
            | Input::AppData { at, .. }
            | Input::Tick { at } => *at,
        }
    }
}

/// One action the protocol core asks its driver to execute.
#[derive(Debug, Clone)]
pub enum Output<P> {
    /// Transmit a frame from `from` to `to` (one datagram; broadcasts are
    /// fanned out by the [`IoCtx`] into one `Send` per physical receiver).
    Send {
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Frame size, bits.
        size_bits: u32,
        /// Billing ledger.
        account: EnergyAccount,
        /// Whether this came from a broadcast fan-out.
        broadcast: bool,
        /// The payload to put on the wire.
        payload: P,
    },
    /// Arm a timer: feed a [`Input::TimerFired`] with this tag back in
    /// after `delay`.
    ArmTimer {
        /// The node the timer belongs to.
        node: NodeId,
        /// Delay from the input that produced this output.
        delay: SimDuration,
        /// Opaque protocol tag.
        tag: u64,
    },
    /// The protocol reports `packet` delivered at `node`. The driver owns
    /// end-to-end delay accounting (it knows the packet's creation time).
    Deliver {
        /// The application packet.
        packet: DataId,
        /// The delivering node.
        node: NodeId,
        /// Protocol-counted end-to-end transmissions (0 = untracked).
        hops: u32,
    },
    /// A trace event for the driver's observability pipeline (same codec
    /// as simulator traces, so `PacketLedger`/`trace` ingest it
    /// unchanged).
    Trace(TraceEvent),
}

/// The buffered-output driver behind [`EngineCore`]: answers
/// [`ProtoCtx`] queries from a [`WorldView`] and pushes every protocol
/// action onto an output queue.
///
/// Failure-oracle queries answer "nothing is faulty": a real cluster
/// node has no oracle, and `refer-node` runs the Oracle fault model with
/// zero injected faults, where that answer is the truth. Congestion
/// queries answer "idle" — localhost UDP has no radio backlog to model.
#[derive(Debug)]
pub struct IoCtx<P> {
    world: WorldView,
    now: SimTime,
    rng: StdRng,
    data: HashMap<DataId, PacketMeta>,
    out: Vec<Output<P>>,
    scratch: Vec<NodeId>,
}

impl<P: Clone + Debug> IoCtx<P> {
    /// Creates a driver over `world`; protocol randomness is seeded from
    /// the scenario seed, like the simulator's run RNG.
    pub fn new(world: WorldView) -> Self {
        let seed = world.cfg.seed;
        IoCtx {
            world,
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            data: HashMap::new(),
            out: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Registers origin-side packet knowledge before `on_app_data`.
    pub fn register_packet(&mut self, id: DataId, meta: PacketMeta) {
        self.data.insert(id, meta);
    }

    /// Advances the driver clock (monotonic: earlier timestamps are
    /// clamped to `now`).
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }

    /// Drains the buffered outputs.
    pub fn take_outputs(&mut self) -> Vec<Output<P>> {
        std::mem::take(&mut self.out)
    }

    /// The frozen world snapshot.
    pub fn world(&self) -> &WorldView {
        &self.world
    }
}

impl<P: Clone + Debug> ProtoCtx<P> for IoCtx<P> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn config(&self) -> &SimConfig {
        &self.world.cfg
    }
    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
    fn node_count(&self) -> usize {
        self.world.kinds.len()
    }
    fn sensor_ids(&self) -> &[NodeId] {
        &self.world.sensors
    }
    fn actuator_ids(&self) -> &[NodeId] {
        &self.world.actuators
    }
    fn kind(&self, id: NodeId) -> NodeKind {
        self.world.kinds[id.index()]
    }
    fn position(&self, id: NodeId) -> Point {
        self.world.positions[id.index()]
    }
    fn range(&self, id: NodeId) -> f64 {
        self.world.ranges[id.index()]
    }
    fn battery(&self, id: NodeId) -> f64 {
        self.world.batteries[id.index()]
    }
    fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance(&self.position(b))
    }
    fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        self.world.cfg.radio.link.link_up(self.distance(a, b), self.range(a))
    }
    fn is_faulty(&self, _id: NodeId) -> bool {
        false
    }
    fn self_faulty(&self, _id: NodeId) -> bool {
        false
    }
    fn self_compromised(&self, _id: NodeId) -> bool {
        false
    }
    fn link_ok(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.in_range(a, b)
    }
    fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.physical_neighbors_into(id, &mut out);
        out
    }
    fn physical_neighbors_into(&self, id: NodeId, buf: &mut Vec<NodeId>) {
        buf.clear();
        let (my_pos, my_range) = (self.position(id), self.range(id));
        buf.extend(
            (0..self.world.kinds.len() as u32)
                .map(NodeId)
                .filter(|&other| {
                    other != id && my_pos.distance(&self.world.positions[other.index()]) <= my_range
                }),
        );
    }
    fn queue_delay(&self, _id: NodeId) -> SimDuration {
        SimDuration::ZERO
    }
    fn is_congested(&self, _id: NodeId) -> bool {
        false
    }
    fn service_time(&self, size_bits: u32) -> SimDuration {
        SimDuration::from_secs_f64(f64::from(size_bits) / self.world.cfg.radio.bitrate_bps)
            + self.world.cfg.radio.mac_overhead
    }
    fn send(
        &mut self,
        from: NodeId,
        to: NodeId,
        size_bits: u32,
        account: EnergyAccount,
        payload: P,
    ) -> bool {
        if !self.link_ok(from, to) {
            return false;
        }
        self.out.push(Output::Send { from, to, size_bits, account, broadcast: false, payload });
        true
    }
    fn send_acked(
        &mut self,
        from: NodeId,
        to: NodeId,
        size_bits: u32,
        account: EnergyAccount,
        payload: P,
    ) {
        // The UDP shell carries no link-layer ACK emulation yet: acked
        // sends are transmitted fire-and-forget and neither `on_ack` nor
        // `on_send_expired` ever fires. Under the Oracle fault model —
        // the only model `refer-node` clusters run — protocols use plain
        // `send` on the data path, so this is construction-replay-only
        // territory.
        let _ = self.send(from, to, size_bits, account, payload);
    }
    fn broadcast(
        &mut self,
        from: NodeId,
        size_bits: u32,
        account: EnergyAccount,
        payload: P,
    ) -> usize {
        let mut receivers = std::mem::take(&mut self.scratch);
        self.physical_neighbors_into(from, &mut receivers);
        for &to in &receivers {
            self.out.push(Output::Send {
                from,
                to,
                size_bits,
                account,
                broadcast: true,
                payload: payload.clone(),
            });
        }
        let n = receivers.len();
        receivers.clear();
        self.scratch = receivers;
        n
    }
    fn set_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) {
        self.out.push(Output::ArmTimer { node, delay, tag });
    }
    fn trace_hop(&mut self, packet: DataId, from: NodeId, to: NodeId, reason: HopReason) {
        let at = self.now;
        self.out.push(Output::Trace(TraceEvent::Hop {
            at,
            packet,
            from,
            to,
            reason,
            queue_s: 0.0,
        }));
    }
    fn deliver_data_with_hops(&mut self, data: DataId, at: NodeId, hops: u32) {
        self.out.push(Output::Deliver { packet: data, node: at, hops });
    }
    fn drop_data_reason(&mut self, data: DataId, reason: DropReason) {
        let at = self.now;
        self.out.push(Output::Trace(TraceEvent::Dropped { at, packet: data, reason }));
    }
    fn record_suspicion(&mut self, node: NodeId) {
        let at = self.now;
        self.out.push(Output::Trace(TraceEvent::Suspected { at, node }));
    }
    fn record_eviction(&mut self, _node: NodeId) {}
    fn record_handover(&mut self) {}
    fn byz_slander(&mut self, _accuser: NodeId, _candidates: &[NodeId]) -> Option<NodeId> {
        None
    }
    fn data_origin(&self, data: DataId) -> Option<NodeId> {
        self.data.get(&data).map(|m| m.origin)
    }
    fn data_size_bits(&self, data: DataId) -> Option<u32> {
        self.data.get(&data).map(|m| m.size_bits)
    }
    fn data_dest(&self, data: DataId) -> Option<NodeId> {
        self.data.get(&data).and_then(|m| m.dest)
    }
    fn tracing_active(&self) -> bool {
        true
    }
}

/// A [`SansIo`] protocol plus its buffered-output driver: the unit a real
/// I/O shell embeds. `handle` is the entire API — one input in, the
/// resulting outputs out, strictly run-to-completion.
pub struct EngineCore<T: SansIo> {
    proto: T,
    ctx: IoCtx<T::Payload>,
}

impl<T: SansIo> EngineCore<T> {
    /// Wraps an already-initialized protocol (typically carried out of
    /// [`wsan_sim::runner::construct`]) and a frozen world snapshot.
    pub fn new(proto: T, world: WorldView) -> Self {
        EngineCore { proto, ctx: IoCtx::new(world) }
    }

    /// Applies one input and returns everything the protocol asked for in
    /// response, in the order it asked.
    pub fn handle(&mut self, input: Input<T::Payload>) -> impl Iterator<Item = Output<T::Payload>> {
        self.ctx.advance_to(input.at());
        match input {
            Input::Frame { to, msg, .. } => self.proto.on_message(&mut self.ctx, to, msg),
            Input::TimerFired { node, tag, .. } => self.proto.on_timer(&mut self.ctx, node, tag),
            Input::AppData { at, node, packet, size_bits, dest } => {
                self.ctx.register_packet(
                    packet,
                    PacketMeta { origin: node, size_bits, dest, created: at },
                );
                self.proto.on_app_data(&mut self.ctx, node, packet);
            }
            Input::Tick { .. } => {}
        }
        self.ctx.take_outputs().into_iter()
    }

    /// Registers origin-side knowledge of a packet that was created by
    /// *another* driver (it arrived over the wire rather than via
    /// [`Input::AppData`]), so the protocol's `data_*` queries resolve at
    /// relay and delivery nodes too. `Input::AppData` registers its own
    /// packet; this is for every other process in a cluster.
    pub fn register_packet(&mut self, id: DataId, meta: PacketMeta) {
        self.ctx.register_packet(id, meta);
    }

    /// The wrapped protocol (stats inspection).
    pub fn protocol(&self) -> &T {
        &self.proto
    }

    /// The driver context (world + clock inspection).
    pub fn ctx(&self) -> &IoCtx<T::Payload> {
        &self.ctx
    }
}
