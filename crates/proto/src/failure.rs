//! Local failure suspicion: the per-protocol view that replaces the global
//! fault oracle under [`FaultModel::Discovered`](wsan_sim::FaultModel).
//!
//! A [`FailureView`] is a plain data structure protocols embed: it records
//! when each peer was last *heard* (an ACK, a beacon, any received frame)
//! and which peers are currently *suspected* (an ACK timeout, a missed
//! heartbeat). Suspicions age out after a TTL so a transient fault — the
//! simulator's rotating faulty set — does not blacklist a recovered node
//! forever, and any later contact clears the suspicion immediately.
//!
//! Under [`FaultModel::Byzantine`](wsan_sim::FaultModel) the view also
//! accepts *remote accusations* (suspicion gossip) through [`accuse`]
//! (FailureView::accuse). Remote evidence is reputation-weighted per
//! accuser and audited against direct contact: an accusation against a
//! node we have just heard from contradicts first-hand evidence, so it is
//! rejected and the accuser's weight is halved. A node becomes suspected
//! on rumor alone only once the *weighted* accusation mass crosses a
//! threshold, so a slandering minority whose weights have decayed cannot
//! evict a healthy node, while corroborated accusers earn their weight
//! back. Everything here is deterministic and derives only from
//! information a deployed node could really have.

use std::collections::BTreeMap;
use wsan_sim::{NodeId, SimDuration, SimTime};

/// Weighted accusation mass at which rumor alone creates a suspicion: a
/// single full-weight accuser can never evict on their own.
pub const ACCUSATION_THRESHOLD: f64 = 2.0;

/// Multiplier applied to an accuser's weight when their accusation is
/// contradicted by fresh direct contact with the accused.
pub const WEIGHT_DECAY: f64 = 0.5;

/// Weight floor: even a serial slanderer keeps a trace of a voice, so a
/// later true accusation is not discarded outright.
pub const MIN_WEIGHT: f64 = 1.0 / 32.0;

/// Outcome of recording a remote accusation via [`FailureView::accuse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuseOutcome {
    /// Contradicted by fresh direct contact with the accused; rejected,
    /// and the accuser's reputation weight decayed.
    Audited,
    /// Recorded, but the weighted accusation mass is still below the
    /// eviction threshold.
    Recorded,
    /// The weighted mass crossed the threshold: the accused is now
    /// suspected (a fresh incident, exactly once per crossing).
    Suspected,
}

/// A suspected-node set fed by ACK timeouts and heartbeat silence, cleared
/// by contact, with TTL-based forgiveness and reputation-weighted remote
/// accusations.
#[derive(Debug, Clone)]
pub struct FailureView {
    /// When each currently suspected node was suspected.
    suspected: BTreeMap<NodeId, SimTime>,
    /// When each node was last heard from (any received frame or ACK).
    last_contact: BTreeMap<NodeId, SimTime>,
    /// Standing remote accusations: accused -> accuser -> when.
    accusations: BTreeMap<NodeId, BTreeMap<NodeId, SimTime>>,
    /// Per-accuser reputation weight (absent = 1.0, the default).
    accuser_weights: BTreeMap<NodeId, f64>,
    /// How long a suspicion (or standing accusation) lasts without fresh
    /// evidence.
    ttl: SimDuration,
}

impl FailureView {
    /// Creates an empty view whose suspicions expire after `ttl`.
    pub fn new(ttl: SimDuration) -> Self {
        FailureView {
            suspected: BTreeMap::new(),
            last_contact: BTreeMap::new(),
            accusations: BTreeMap::new(),
            accuser_weights: BTreeMap::new(),
            ttl,
        }
    }

    /// Evidence that `node` is alive right `now`: records the contact and
    /// clears any standing suspicion and accusations against it.
    pub fn contact(&mut self, node: NodeId, now: SimTime) {
        self.last_contact.insert(node, now);
        self.suspected.remove(&node);
        self.accusations.remove(&node);
    }

    /// Evidence that `node` may be down (ACK timeout, missed heartbeat).
    /// Returns `true` when this is a *new* suspicion (callers use that to
    /// record detection metrics exactly once per incident).
    ///
    /// A contact in the same tick wins deterministically: first-hand proof
    /// of life at time `now` vetoes a suspicion raised at `now`, whichever
    /// order the two events are processed in.
    pub fn suspect(&mut self, node: NodeId, now: SimTime) -> bool {
        if self.last_contact.get(&node) == Some(&now) {
            return false;
        }
        // Direct evidence corroborates standing accusers: restore their
        // reputation toward full weight.
        let accusers: Vec<NodeId> = self
            .accusations
            .get(&node)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        for accuser in accusers {
            let w = self.weight_of(accuser);
            if w < 1.0 {
                self.accuser_weights.insert(accuser, (w / WEIGHT_DECAY).min(1.0));
            }
        }
        if self.is_suspected(node, now) {
            // Refresh the suspicion clock but report nothing new.
            self.suspected.insert(node, now);
            return false;
        }
        self.suspected.insert(node, now);
        true
    }

    /// A remote accusation from `accuser` that `accused` is down
    /// (suspicion gossip). Audited against direct contact and weighted by
    /// the accuser's reputation; see [`AccuseOutcome`].
    pub fn accuse(&mut self, accuser: NodeId, accused: NodeId, now: SimTime) -> AccuseOutcome {
        if accuser == accused {
            return AccuseOutcome::Recorded;
        }
        // Audit: we heard the accused ourselves within the suspicion TTL,
        // so the rumor contradicts first-hand evidence. Reject it and
        // decay the accuser's reputation.
        if let Some(&heard) = self.last_contact.get(&accused) {
            if now.saturating_since(heard) < self.ttl {
                let w = self.weight_of(accuser);
                self.accuser_weights.insert(accuser, (w * WEIGHT_DECAY).max(MIN_WEIGHT));
                return AccuseOutcome::Audited;
            }
        }
        let entry = self.accusations.entry(accused).or_default();
        entry.insert(accuser, now);
        // Prune expired accusations, then tally the weighted mass.
        let ttl = self.ttl;
        entry.retain(|_, &mut at| now.saturating_since(at) < ttl);
        let mass: f64 = entry
            .keys()
            .map(|a| self.accuser_weights.get(a).copied().unwrap_or(1.0))
            .sum();
        if mass >= ACCUSATION_THRESHOLD && !self.is_suspected(accused, now) {
            self.suspected.insert(accused, now);
            AccuseOutcome::Suspected
        } else {
            AccuseOutcome::Recorded
        }
    }

    /// The reputation weight of `accuser` (1.0 unless decayed by audits).
    pub fn weight_of(&self, accuser: NodeId) -> f64 {
        self.accuser_weights.get(&accuser).copied().unwrap_or(1.0)
    }

    /// Whether `node` is currently suspected. A suspicion recorded exactly
    /// `ttl` ago has expired (strict inequality): the node gets the
    /// benefit of the doubt the moment its sentence is served.
    pub fn is_suspected(&self, node: NodeId, now: SimTime) -> bool {
        match self.suspected.get(&node) {
            Some(&at) => now.saturating_since(at) < self.ttl,
            None => false,
        }
    }

    /// When `node` was last heard from, if ever.
    pub fn last_contact(&self, node: NodeId) -> Option<SimTime> {
        self.last_contact.get(&node).copied()
    }

    /// Whether `node` has been silent for longer than `timeout` since its
    /// last contact (nodes never heard from are not stale — there is no
    /// evidence either way).
    pub fn stale(&self, node: NodeId, now: SimTime, timeout: SimDuration) -> bool {
        match self.last_contact.get(&node) {
            Some(&at) => now.saturating_since(at) > timeout,
            None => false,
        }
    }

    /// Number of currently suspected nodes (including any whose TTL has
    /// lapsed but which were never touched since).
    pub fn suspected_len(&self) -> usize {
        self.suspected.len()
    }

    /// The nodes suspected right `now` (TTL-unexpired), in ascending id
    /// order — the honest payload of a suspicion-gossip round.
    pub fn suspected_nodes(&self, now: SimTime) -> Vec<NodeId> {
        self.suspected
            .iter()
            .filter(|&(_, &at)| now.saturating_since(at) < self.ttl)
            .map(|(&node, _)| node)
            .collect()
    }

    /// Drops suspicion, contact and reputation state entirely (e.g. on a
    /// role change).
    pub fn clear(&mut self) {
        self.suspected.clear();
        self.last_contact.clear();
        self.accusations.clear();
        self.accuser_weights.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn suspicion_is_cleared_by_contact() {
        let mut v = FailureView::new(SimDuration::from_secs(30));
        assert!(v.suspect(NodeId(1), t(0)));
        assert!(v.is_suspected(NodeId(1), t(1)));
        v.contact(NodeId(1), t(2));
        assert!(!v.is_suspected(NodeId(1), t(2)));
    }

    #[test]
    fn repeated_suspicion_reports_new_only_once() {
        let mut v = FailureView::new(SimDuration::from_secs(30));
        assert!(v.suspect(NodeId(7), t(0)));
        assert!(!v.suspect(NodeId(7), t(1)));
        // After the TTL lapses the node gets the benefit of the doubt and
        // a later timeout is a fresh incident.
        assert!(!v.is_suspected(NodeId(7), t(40)));
        assert!(v.suspect(NodeId(7), t(40)));
    }

    #[test]
    fn staleness_requires_prior_contact() {
        let mut v = FailureView::new(SimDuration::from_secs(30));
        assert!(!v.stale(NodeId(3), t(100), SimDuration::from_secs(10)));
        v.contact(NodeId(3), t(0));
        assert!(!v.stale(NodeId(3), t(5), SimDuration::from_secs(10)));
        assert!(v.stale(NodeId(3), t(11), SimDuration::from_secs(10)));
    }

    #[test]
    fn suspicion_exactly_ttl_old_has_expired() {
        let mut v = FailureView::new(SimDuration::from_secs(30));
        assert!(v.suspect(NodeId(1), t(0)));
        assert!(v.is_suspected(NodeId(1), t(29)));
        // The boundary: a suspicion recorded exactly `ttl` ago is over.
        assert!(!v.is_suspected(NodeId(1), t(30)));
        // And a fresh timeout right then is a brand-new incident.
        assert!(v.suspect(NodeId(1), t(30)));
    }

    #[test]
    fn same_tick_contact_beats_suspicion_in_either_order() {
        // Contact first, then a suspicion in the same tick: vetoed.
        let mut v = FailureView::new(SimDuration::from_secs(30));
        v.contact(NodeId(5), t(10));
        assert!(!v.suspect(NodeId(5), t(10)));
        assert!(!v.is_suspected(NodeId(5), t(10)));
        // Suspicion first, then contact in the same tick: cleared.
        let mut v = FailureView::new(SimDuration::from_secs(30));
        assert!(v.suspect(NodeId(5), t(10)));
        v.contact(NodeId(5), t(10));
        assert!(!v.is_suspected(NodeId(5), t(10)));
        // Either way the end state is identical: not suspected.
    }

    #[test]
    fn single_accuser_cannot_evict() {
        let mut v = FailureView::new(SimDuration::from_secs(30));
        assert_eq!(v.accuse(NodeId(9), NodeId(1), t(0)), AccuseOutcome::Recorded);
        assert!(!v.is_suspected(NodeId(1), t(0)));
    }

    #[test]
    fn accusation_mass_crosses_threshold_once() {
        let mut v = FailureView::new(SimDuration::from_secs(30));
        assert_eq!(v.accuse(NodeId(9), NodeId(1), t(0)), AccuseOutcome::Recorded);
        assert_eq!(v.accuse(NodeId(8), NodeId(1), t(1)), AccuseOutcome::Suspected);
        assert!(v.is_suspected(NodeId(1), t(1)));
        // A third voice refreshes nothing new.
        assert_eq!(v.accuse(NodeId(7), NodeId(1), t(2)), AccuseOutcome::Recorded);
    }

    #[test]
    fn audited_accusations_decay_the_accuser() {
        let mut v = FailureView::new(SimDuration::from_secs(30));
        // We just heard node 1 ourselves: the accusation is slander.
        v.contact(NodeId(1), t(10));
        assert_eq!(v.accuse(NodeId(9), NodeId(1), t(11)), AccuseOutcome::Audited);
        assert_eq!(v.weight_of(NodeId(9)), 0.5);
        assert_eq!(v.accuse(NodeId(9), NodeId(1), t(12)), AccuseOutcome::Audited);
        assert_eq!(v.weight_of(NodeId(9)), 0.25);
        assert!(!v.is_suspected(NodeId(1), t(12)));
    }

    #[test]
    fn corroborated_accusers_earn_weight_back() {
        let mut v = FailureView::new(SimDuration::from_secs(30));
        v.contact(NodeId(1), t(0));
        assert_eq!(v.accuse(NodeId(9), NodeId(1), t(1)), AccuseOutcome::Audited);
        assert_eq!(v.weight_of(NodeId(9)), 0.5);
        // Much later the same accuser flags node 1 again — and this time
        // our own ACK timeout agrees.
        assert_eq!(v.accuse(NodeId(9), NodeId(1), t(40)), AccuseOutcome::Recorded);
        assert!(v.suspect(NodeId(1), t(41)));
        assert_eq!(v.weight_of(NodeId(9)), 1.0);
    }

    #[test]
    fn accusations_expire_with_the_ttl() {
        let mut v = FailureView::new(SimDuration::from_secs(30));
        assert_eq!(v.accuse(NodeId(9), NodeId(1), t(0)), AccuseOutcome::Recorded);
        // 40 s later the first accusation has lapsed; a second accuser
        // alone is below threshold.
        assert_eq!(v.accuse(NodeId(8), NodeId(1), t(40)), AccuseOutcome::Recorded);
        assert!(!v.is_suspected(NodeId(1), t(40)));
    }

    /// The acceptance comparison: with ≥20% slanderers gossiping against a
    /// healthy, regularly-heard node, raw suspicion counting evicts it
    /// while the reputation-weighted view never does.
    #[test]
    fn reputation_weighting_resists_slander_where_raw_counting_evicts() {
        let ttl = SimDuration::from_secs(30);
        let healthy = NodeId(100);
        // 10 accusers, 2 of them slanderers (20%).
        let slanderers = [NodeId(0), NodeId(1)];
        let mut raw_evictions = 0u32;
        let mut weighted_evictions = 0u32;

        let mut raw = FailureView::new(ttl);
        let mut weighted = FailureView::new(ttl);
        for round in 0..20u64 {
            let now = t(round * 5);
            // The healthy node beacons every round: both views hear it.
            raw.contact(healthy, now);
            weighted.contact(healthy, now);
            let later = SimTime::ZERO + SimDuration::from_secs(round * 5 + 1);
            for &s in &slanderers {
                // Raw counting treats every rumor as a first-hand timeout.
                if raw.suspect(healthy, later) {
                    raw_evictions += 1;
                }
                if weighted.accuse(s, healthy, later) == AccuseOutcome::Suspected {
                    weighted_evictions += 1;
                }
            }
        }
        assert!(
            raw_evictions > 0,
            "raw suspicion counting must evict the healthy node at least once"
        );
        assert_eq!(
            weighted_evictions, 0,
            "reputation-weighted view must never evict the regularly-heard node"
        );
        // The slanderers paid for it.
        for &s in &slanderers {
            assert!(weighted.weight_of(s) < 0.1, "slanderer weight decayed");
        }
    }
}
