//! # refer-proto — the sans-io protocol layer of the REFER reproduction
//!
//! The protocol implementations in this workspace (REFER itself, the
//! Kautz overlay baseline) are pure state machines: they react to frames,
//! timers and application packets, and they act only through a narrow
//! driver surface — send a frame, arm a timer, report a delivery. This
//! crate names that surface so the *same* protocol code can run under two
//! very different drivers with zero duplicated logic:
//!
//! * the discrete-event simulator ([`wsan_sim::Ctx`] implements
//!   [`ProtoCtx`] directly, so simulator behavior — and its traces — are
//!   bit-identical to the pre-split code);
//! * a real network daemon (`refer-node`), whose [`EngineCore`] feeds
//!   decoded datagrams and monotonic-clock timers in as [`Input`]s and
//!   hands buffered [`Output`]s back to an async UDP shell.
//!
//! Protocols implement [`SansIo`] (the generic-driver twin of
//! [`wsan_sim::Protocol`]); drivers implement [`ProtoCtx`]. The crate
//! also hosts [`FailureView`], the failure-suspicion/reputation state
//! protocols embed — plain data, no I/O, equally at home in either
//! driver.
//!
//! Determinism rules (the contract both drivers honor):
//!
//! 1. all protocol randomness comes from [`ProtoCtx::rng`];
//! 2. time only moves forward, and only the driver moves it;
//! 3. a hook invocation sees the world as of its input's timestamp and
//!    must finish before the next input is applied (run-to-completion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod failure;

pub use engine::{EngineCore, Input, IoCtx, Output, PacketMeta, WorldView};
pub use failure::{AccuseOutcome, FailureView, ACCUSATION_THRESHOLD, MIN_WEIGHT, WEIGHT_DECAY};

use rand::rngs::StdRng;
use std::fmt::Debug;
use wsan_sim::{
    Ctx, DataId, DropReason, EnergyAccount, HopReason, Message, NodeId, NodeKind, Point,
    SimConfig, SimDuration, SimTime,
};

/// The driver contract: everything a protocol may ask of, or do to, the
/// world it runs in.
///
/// [`wsan_sim::Ctx`] implements this by forwarding to its inherent
/// methods, so generic protocol code monomorphizes to exactly the code it
/// compiled to before the sans-io split. [`IoCtx`] implements it by
/// buffering [`Output`]s for a real I/O shell to execute.
///
/// The oracle-flavored queries ([`is_faulty`](ProtoCtx::is_faulty),
/// [`link_ok`](ProtoCtx::link_ok), [`neighbors`](ProtoCtx::neighbors))
/// keep their simulator semantics: perfect knowledge, billed as oracle
/// consultations by the sim driver. A deployed driver answers them from
/// the deterministic construction snapshot — honest only while nothing
/// fails, which is why `refer-node` clusters run the Oracle fault model
/// with zero injected faults.
pub trait ProtoCtx<P: Clone + Debug> {
    // ----- clock and configuration ------------------------------------

    /// Current protocol time.
    fn now(&self) -> SimTime;
    /// The scenario configuration (read-only).
    fn config(&self) -> &SimConfig;
    /// The deterministic protocol RNG. Protocols must draw all randomness
    /// here.
    fn rng(&mut self) -> &mut StdRng;

    // ----- topology queries --------------------------------------------

    /// Number of nodes (sensors + actuators).
    fn node_count(&self) -> usize;
    /// The sensor ids.
    fn sensor_ids(&self) -> &[NodeId];
    /// The actuator ids.
    fn actuator_ids(&self) -> &[NodeId];
    /// Device class of `id`.
    fn kind(&self, id: NodeId) -> NodeKind;
    /// Current position of `id`.
    fn position(&self, id: NodeId) -> Point;
    /// Transmission range of `id`, meters.
    fn range(&self, id: NodeId) -> f64;
    /// Remaining battery of `id`, Joules.
    fn battery(&self, id: NodeId) -> f64;
    /// Distance between two nodes, meters.
    fn distance(&self, a: NodeId, b: NodeId) -> f64;
    /// Whether `b` is inside `a`'s transmission range.
    fn in_range(&self, a: NodeId, b: NodeId) -> bool;
    /// Whether `id` is currently broken down (fault oracle; see
    /// [`wsan_sim::Ctx::is_faulty`]).
    fn is_faulty(&self, id: NodeId) -> bool;
    /// Whether `id` itself is currently broken down (self-knowledge).
    fn self_faulty(&self, id: NodeId) -> bool;
    /// Whether `id` itself is Byzantine-compromised (self-knowledge).
    fn self_compromised(&self, id: NodeId) -> bool;
    /// Whether a frame from `a` would currently reach `b` (link oracle).
    fn link_ok(&self, a: NodeId, b: NodeId) -> bool;
    /// Alive nodes currently within `id`'s range (oracle).
    fn neighbors(&self, id: NodeId) -> Vec<NodeId>;
    /// The nodes a broadcast from `id` physically reaches right now, into
    /// a caller-owned buffer (cleared and refilled in ascending id order).
    fn physical_neighbors_into(&self, id: NodeId, buf: &mut Vec<NodeId>);
    /// How long `id`'s radio queue currently is.
    fn queue_delay(&self, id: NodeId) -> SimDuration;
    /// Whether `id` counts as congested (backlog over a tenth of the QoS
    /// deadline).
    fn is_congested(&self, id: NodeId) -> bool;
    /// Per-frame service time at the configured bitrate + MAC overhead.
    fn service_time(&self, size_bits: u32) -> SimDuration;

    // ----- acting -------------------------------------------------------

    /// Sends a unicast frame; returns `false` when the MAC reports the
    /// link down (see [`wsan_sim::Ctx::send`]).
    fn send(
        &mut self,
        from: NodeId,
        to: NodeId,
        size_bits: u32,
        account: EnergyAccount,
        payload: P,
    ) -> bool;
    /// Sends a unicast frame with link-layer acknowledgment; the outcome
    /// arrives asynchronously via `on_ack` / `on_send_expired`.
    fn send_acked(
        &mut self,
        from: NodeId,
        to: NodeId,
        size_bits: u32,
        account: EnergyAccount,
        payload: P,
    );
    /// Broadcasts a frame to every alive node in range; returns the
    /// receiver count.
    fn broadcast(&mut self, from: NodeId, size_bits: u32, account: EnergyAccount, payload: P)
        -> usize;
    /// Schedules a protocol timer on `node` after `delay` with `tag`.
    fn set_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64);

    // ----- application data ---------------------------------------------

    /// Records one forwarding decision for `packet` (free when tracing is
    /// off).
    fn trace_hop(&mut self, packet: DataId, from: NodeId, to: NodeId, reason: HopReason);
    /// Records that `data` reached its destination.
    fn deliver_data(&mut self, data: DataId, at: NodeId) {
        self.deliver_data_with_hops(data, at, 0);
    }
    /// [`deliver_data`](ProtoCtx::deliver_data) with the protocol's
    /// end-to-end transmission count.
    fn deliver_data_with_hops(&mut self, data: DataId, at: NodeId, hops: u32);
    /// Records that the protocol gave up on `data`.
    fn drop_data(&mut self, data: DataId) {
        self.drop_data_reason(data, DropReason::Other);
    }
    /// [`drop_data`](ProtoCtx::drop_data) with a reason bucket.
    fn drop_data_reason(&mut self, data: DataId, reason: DropReason);
    /// Records a fresh failure suspicion against `node` (graded against
    /// ground truth by the sim driver; a trace event under both drivers).
    fn record_suspicion(&mut self, node: NodeId);
    /// Records a membership eviction of `node`.
    fn record_eviction(&mut self, node: NodeId);
    /// Records one Kautz-ID handover.
    fn record_handover(&mut self);
    /// Adversary gossip hook; `None` for honest nodes and skipped rounds.
    fn byz_slander(&mut self, accuser: NodeId, candidates: &[NodeId]) -> Option<NodeId>;
    /// The origin node of an application packet (if locally known).
    fn data_origin(&self, data: DataId) -> Option<NodeId>;
    /// The application payload size of a packet, bits (if locally known).
    fn data_size_bits(&self, data: DataId) -> Option<u32>;
    /// The workload-assigned destination of `data` (if any, and locally
    /// known).
    fn data_dest(&self, data: DataId) -> Option<NodeId>;
    /// Whether any trace consumer is attached (protocols may skip building
    /// expensive event payloads when false).
    fn tracing_active(&self) -> bool;
}

/// The simulator driver: [`wsan_sim::Ctx`] *is* a [`ProtoCtx`]. Every
/// method forwards to the identically-named inherent method, so generic
/// protocol code compiled against this impl is the code that ran before
/// the sans-io split — which is what keeps pre/post-refactor traces
/// byte-identical.
impl<P: Clone + Debug> ProtoCtx<P> for Ctx<P> {
    #[inline]
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }
    #[inline]
    fn config(&self) -> &SimConfig {
        Ctx::config(self)
    }
    #[inline]
    fn rng(&mut self) -> &mut StdRng {
        Ctx::rng(self)
    }
    #[inline]
    fn node_count(&self) -> usize {
        Ctx::node_count(self)
    }
    #[inline]
    fn sensor_ids(&self) -> &[NodeId] {
        Ctx::sensor_ids(self)
    }
    #[inline]
    fn actuator_ids(&self) -> &[NodeId] {
        Ctx::actuator_ids(self)
    }
    #[inline]
    fn kind(&self, id: NodeId) -> NodeKind {
        Ctx::kind(self, id)
    }
    #[inline]
    fn position(&self, id: NodeId) -> Point {
        Ctx::position(self, id)
    }
    #[inline]
    fn range(&self, id: NodeId) -> f64 {
        Ctx::range(self, id)
    }
    #[inline]
    fn battery(&self, id: NodeId) -> f64 {
        Ctx::battery(self, id)
    }
    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        Ctx::distance(self, a, b)
    }
    #[inline]
    fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        Ctx::in_range(self, a, b)
    }
    #[inline]
    fn is_faulty(&self, id: NodeId) -> bool {
        Ctx::is_faulty(self, id)
    }
    #[inline]
    fn self_faulty(&self, id: NodeId) -> bool {
        Ctx::self_faulty(self, id)
    }
    #[inline]
    fn self_compromised(&self, id: NodeId) -> bool {
        Ctx::self_compromised(self, id)
    }
    #[inline]
    fn link_ok(&self, a: NodeId, b: NodeId) -> bool {
        Ctx::link_ok(self, a, b)
    }
    #[inline]
    fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        Ctx::neighbors(self, id)
    }
    #[inline]
    fn physical_neighbors_into(&self, id: NodeId, buf: &mut Vec<NodeId>) {
        Ctx::physical_neighbors_into(self, id, buf)
    }
    #[inline]
    fn queue_delay(&self, id: NodeId) -> SimDuration {
        Ctx::queue_delay(self, id)
    }
    #[inline]
    fn is_congested(&self, id: NodeId) -> bool {
        Ctx::is_congested(self, id)
    }
    #[inline]
    fn service_time(&self, size_bits: u32) -> SimDuration {
        Ctx::service_time(self, size_bits)
    }
    #[inline]
    fn send(
        &mut self,
        from: NodeId,
        to: NodeId,
        size_bits: u32,
        account: EnergyAccount,
        payload: P,
    ) -> bool {
        Ctx::send(self, from, to, size_bits, account, payload)
    }
    #[inline]
    fn send_acked(
        &mut self,
        from: NodeId,
        to: NodeId,
        size_bits: u32,
        account: EnergyAccount,
        payload: P,
    ) {
        Ctx::send_acked(self, from, to, size_bits, account, payload)
    }
    #[inline]
    fn broadcast(
        &mut self,
        from: NodeId,
        size_bits: u32,
        account: EnergyAccount,
        payload: P,
    ) -> usize {
        Ctx::broadcast(self, from, size_bits, account, payload)
    }
    #[inline]
    fn set_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) {
        Ctx::set_timer(self, node, delay, tag)
    }
    #[inline]
    fn trace_hop(&mut self, packet: DataId, from: NodeId, to: NodeId, reason: HopReason) {
        Ctx::trace_hop(self, packet, from, to, reason)
    }
    #[inline]
    fn deliver_data_with_hops(&mut self, data: DataId, at: NodeId, hops: u32) {
        Ctx::deliver_data_with_hops(self, data, at, hops)
    }
    #[inline]
    fn drop_data_reason(&mut self, data: DataId, reason: DropReason) {
        Ctx::drop_data_reason(self, data, reason)
    }
    #[inline]
    fn record_suspicion(&mut self, node: NodeId) {
        Ctx::record_suspicion(self, node)
    }
    #[inline]
    fn record_eviction(&mut self, node: NodeId) {
        Ctx::record_eviction(self, node)
    }
    #[inline]
    fn record_handover(&mut self) {
        Ctx::record_handover(self)
    }
    #[inline]
    fn byz_slander(&mut self, accuser: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        Ctx::byz_slander(self, accuser, candidates)
    }
    #[inline]
    fn data_origin(&self, data: DataId) -> Option<NodeId> {
        Ctx::data_origin(self, data)
    }
    #[inline]
    fn data_size_bits(&self, data: DataId) -> Option<u32> {
        Ctx::data_size_bits(self, data)
    }
    #[inline]
    fn data_dest(&self, data: DataId) -> Option<NodeId> {
        Ctx::data_dest(self, data)
    }
    #[inline]
    fn tracing_active(&self) -> bool {
        Ctx::tracing_active(self)
    }
}

/// A protocol as a pure state machine: [`wsan_sim::Protocol`] with the
/// driver abstracted behind [`ProtoCtx`].
///
/// Implementors write each hook once, generically; a thin
/// `impl wsan_sim::Protocol` shim (one forwarding line per hook — the
/// orphan rule forbids a blanket impl of the foreign trait) plugs the
/// same code into the simulator, and [`EngineCore`] plugs it into real
/// I/O drivers.
pub trait SansIo {
    /// The wire payload this protocol speaks.
    type Payload: Clone + Debug;

    /// Human-readable system name.
    fn name(&self) -> &'static str;

    /// One-time setup before any traffic.
    fn on_init<C: ProtoCtx<Self::Payload>>(&mut self, ctx: &mut C);

    /// A frame arrived at node `at`.
    fn on_message<C: ProtoCtx<Self::Payload>>(
        &mut self,
        ctx: &mut C,
        at: NodeId,
        msg: Message<Self::Payload>,
    );

    /// A protocol timer fired on `at`.
    fn on_timer<C: ProtoCtx<Self::Payload>>(&mut self, ctx: &mut C, at: NodeId, tag: u64);

    /// Application data `data` was produced at `src`.
    fn on_app_data<C: ProtoCtx<Self::Payload>>(&mut self, ctx: &mut C, src: NodeId, data: DataId);

    /// A link-layer ACK from `peer` reached `at`.
    fn on_ack<C: ProtoCtx<Self::Payload>>(&mut self, ctx: &mut C, at: NodeId, peer: NodeId) {
        let _ = (ctx, at, peer);
    }

    /// An acknowledged frame to `peer` exhausted its retries; the payload
    /// comes back to the protocol.
    fn on_send_expired<C: ProtoCtx<Self::Payload>>(
        &mut self,
        ctx: &mut C,
        at: NodeId,
        peer: NodeId,
        payload: Self::Payload,
        attempts: u32,
    ) {
        let _ = (ctx, at, peer, payload, attempts);
    }

    /// The driver's faulty set rotated (simulator only).
    fn on_fault_rotation<C: ProtoCtx<Self::Payload>>(
        &mut self,
        ctx: &mut C,
        failed: &[NodeId],
        recovered: &[NodeId],
    ) {
        let _ = (ctx, failed, recovered);
    }
}
