//! `refer-node` — a deployable REFER node plus a localhost cluster
//! launcher.
//!
//! The binary has two faces:
//!
//! * `refer-node run` is one real network node: a poll-style UDP shell
//!   (plain `std::net`, no async runtime) around the `refer-proto`
//!   sans-io core. It replays the simulator's deterministic construction
//!   phase locally (every process arrives at the identical topology and
//!   rosters — nothing about construction crosses the wire), then
//!   switches to live I/O: datagrams and monotonic-clock timers feed
//!   [`refer_proto::Input`]s into [`refer_proto::EngineCore`], and every
//!   [`refer_proto::Output`] becomes a datagram, an armed timer or a
//!   JSONL trace line the existing `trace` tooling ingests unchanged.
//! * `refer-node cluster` spawns one `run` process per node of a small
//!   REFER cell on localhost, injects the workload, collects the
//!   per-node traces, and prints a sim-predicted vs. measured
//!   delivery/latency comparison for the same topology and seed —
//!   exiting nonzero when measured delivery diverges from the
//!   prediction.

mod wire;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{BufWriter, Write as _};
use std::net::UdpSocket;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use refer::{ReferConfig, ReferMsg, ReferProtocol};
use refer_obs::{from_jsonl_line, to_jsonl_line, PacketLedger, VecSink};
use refer_proto::{EngineCore, Input, Output, PacketMeta, WorldView};
use wsan_sim::trace::TraceEvent;
use wsan_sim::{runner, Area, DataId, Message, NodeId, SimConfig, SimDuration, SimTime};

const USAGE: &str = "\
refer-node: run REFER as real processes on localhost

USAGE:
    refer-node run --node ID [scenario flags] [--trace FILE]
                   [--base-port P] [--epoch-micros T]
    refer-node cluster [scenario flags] [--out DIR] [--json FILE]
                       [--base-port P] [--tolerance F]

Scenario flags (must match across every process of one cluster):
    --seed S            scenario seed            [default: 1]
    --sensors N         sensor count             [default: 16]
    --rate PPS          packets/s per sensor     [default: 4]
    --duration SECS     measured window, seconds [default: 8]

`cluster` spawns sensors + 3 actuator processes, waits for them, merges
their traces, prints the sim-predicted vs. measured comparison, and
exits 1 when |measured - predicted| delivery exceeds the tolerance
(default 0.10).
";

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Scenario knobs shared by `run` and `cluster`; every process of one
/// cluster must agree on them, so both subcommands parse the same set
/// and derive the same [`SimConfig`].
#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    sensors: usize,
    rate_pps: u64,
    duration_s: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario { seed: 1, sensors: 16, rate_pps: 4, duration_s: 8 }
    }
}

impl Scenario {
    /// Consumes one shared flag if `arg` is one; mirrors the
    /// `ScenarioFlags::accept` shape used by the bench CLIs.
    fn accept<I>(&mut self, arg: &str, rest: &mut I) -> Result<bool, String>
    where
        I: Iterator<Item = String>,
    {
        let parse = |name: &str, rest: &mut I| -> Result<u64, String> {
            let raw = rest.next().ok_or_else(|| format!("--{name} needs a value"))?;
            raw.parse::<u64>().map_err(|_| format!("--{name} needs an unsigned integer, got {raw}"))
        };
        match arg {
            "--seed" => self.seed = parse("seed", rest)?,
            "--sensors" => {
                self.sensors = parse("sensors", rest)? as usize;
                if self.sensors < 9 {
                    return Err("--sensors must be at least 9 (one K(2,3) cell)".to_string());
                }
            }
            "--rate" => {
                self.rate_pps = parse("rate", rest)?;
                if self.rate_pps == 0 {
                    return Err("--rate must be positive".to_string());
                }
            }
            "--duration" => {
                self.duration_s = parse("duration", rest)?;
                if self.duration_s == 0 {
                    return Err("--duration must be positive".to_string());
                }
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The cluster scenario: one K(2,3) cell — 3 actuators in a triangle
    /// well inside radio range, sensors around them — with every sensor
    /// sourcing `rate_pps` packets/s. The same config drives the serial
    /// simulator (the prediction) and every daemon's construction replay,
    /// which is what makes the comparison apples-to-apples.
    fn config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper();
        cfg.area = Area::new(400.0, 400.0);
        cfg.sensors = self.sensors;
        cfg.actuators = 3;
        cfg.warmup = SimDuration::from_secs(5);
        cfg.duration = SimDuration::from_secs(self.duration_s);
        // Every alive sensor sources `rate_pps` packets/s, evenly spaced:
        // rounds of 1 s, per-source rate = rate_pps packets of packet_bits.
        cfg.traffic.round_interval = SimDuration::from_secs(1);
        cfg.traffic.sources_per_round = self.sensors;
        cfg.traffic.rate_bps = self.rate_pps as f64 * f64::from(cfg.traffic.packet_bits);
        // A deployed cell neither moves nor breaks: the WorldView frozen
        // out of construction stays the truth for the whole run.
        cfg.mobility.min_speed = 0.0;
        cfg.mobility.max_speed = 0.0;
        cfg.faults.count = 0;
        cfg.seed = self.seed;
        cfg
    }

    fn node_count(&self) -> usize {
        self.sensors + 3
    }
}

fn now_unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => cmd_run(args),
        Some("cluster") => cmd_cluster(args),
        Some(other) => usage(&format!("unknown subcommand {other:?}")),
        None => usage("missing subcommand"),
    }
}

// ---------------------------------------------------------------------
// `run`: one daemon process.
// ---------------------------------------------------------------------

struct Daemon {
    engine: EngineCore<ReferProtocol>,
    socket: UdpSocket,
    base_port: u16,
    me: NodeId,
    trace: BufWriter<Box<dyn std::io::Write + Send>>,
    /// Cluster-clock creation time of every packet this process has seen
    /// (own emissions and wire arrivals), for end-to-end delay accounting.
    created_us: HashMap<DataId, u64>,
    /// Armed timers for the owned node: `(fire_at_us, tag)`.
    timers: BinaryHeap<Reverse<(u64, u64)>>,
    packet_bits: u32,
    sent: u64,
    delivered: u64,
}

impl Daemon {
    fn trace_event(&mut self, ev: &TraceEvent) {
        // A dead trace pipe should not take the data plane down with it.
        let _ = writeln!(self.trace, "{}", to_jsonl_line(ev));
    }

    /// Executes everything the protocol asked for in response to one
    /// input, at cluster time `now_us`.
    fn run_outputs(&mut self, now_us: u64, outputs: Vec<Output<ReferMsg>>) {
        let at = SimTime::from_micros(now_us);
        for out in outputs {
            match out {
                Output::Send { from, to, size_bits, account, broadcast, payload } => {
                    let created = match &payload {
                        ReferMsg::Data(f) => self.created_us.get(&f.data).copied().unwrap_or(0),
                        _ => 0,
                    };
                    let msg = Message { from, size_bits, account, broadcast, payload };
                    let wire = wire::encode_datagram(to, created, &msg);
                    let addr = ("127.0.0.1", self.base_port + to.0 as u16);
                    match self.socket.send_to(&wire, addr) {
                        Ok(_) => {
                            self.sent += 1;
                            self.trace_event(&TraceEvent::Send {
                                at,
                                from,
                                to,
                                size_bits,
                                account,
                            });
                        }
                        Err(_) => self.trace_event(&TraceEvent::SendFailed { at, from, to }),
                    }
                }
                Output::ArmTimer { node, delay, tag } => {
                    // Each process arms only its own node's timers; peers
                    // arm theirs when they process the same causal event.
                    if node == self.me {
                        self.timers.push(Reverse((now_us + delay.as_micros(), tag)));
                    }
                }
                Output::Deliver { packet, node, hops } => {
                    let created = self.created_us.get(&packet).copied().unwrap_or(now_us);
                    let delay_s = now_us.saturating_sub(created) as f64 / 1e6;
                    self.delivered += 1;
                    self.trace_event(&TraceEvent::Delivered { at, packet, node, delay_s, hops });
                }
                Output::Trace(ev) => self.trace_event(&ev),
            }
        }
    }

    /// Feeds one decoded datagram into the core.
    fn on_datagram(&mut self, now_us: u64, bytes: &[u8]) {
        let (to, created_us, msg) = match wire::decode_datagram(bytes) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("refer-node[{}]: dropping undecodable datagram: {e}", self.me.0);
                return;
            }
        };
        if to != self.me {
            return; // misaddressed datagram; not ours to process
        }
        if let ReferMsg::Data(frame) = &msg.payload {
            // First sight of a wire packet: register what its origin knew
            // so the protocol's data_* queries resolve here too.
            let data = frame.data;
            self.created_us.entry(data).or_insert(created_us);
            self.engine.register_packet(
                data,
                PacketMeta {
                    origin: NodeId((data.0 >> 32) as u32),
                    size_bits: self.packet_bits,
                    dest: None,
                    created: SimTime::from_micros(created_us),
                },
            );
        }
        let at = SimTime::from_micros(now_us);
        let outputs: Vec<_> = self.engine.handle(Input::Frame { at, to: self.me, msg }).collect();
        self.run_outputs(now_us, outputs);
    }

    /// Emits one application packet from the owned sensor.
    fn emit(&mut self, now_us: u64, packet: DataId) {
        let at = SimTime::from_micros(now_us);
        self.created_us.insert(packet, now_us);
        self.trace_event(&TraceEvent::PacketOrigin { at, packet, origin: self.me, measured: true });
        let input = Input::AppData {
            at,
            node: self.me,
            packet,
            size_bits: self.packet_bits,
            dest: None,
        };
        let outputs: Vec<_> = self.engine.handle(input).collect();
        self.run_outputs(now_us, outputs);
    }

    fn fire_due_timers(&mut self, now_us: u64) {
        while let Some(&Reverse((fire_at, tag))) = self.timers.peek() {
            if fire_at > now_us {
                break;
            }
            self.timers.pop();
            let input =
                Input::TimerFired { at: SimTime::from_micros(fire_at.max(now_us)), node: self.me, tag };
            let outputs: Vec<_> = self.engine.handle(input).collect();
            self.run_outputs(now_us, outputs);
        }
    }
}

fn cmd_run(args: impl Iterator<Item = String>) -> ExitCode {
    let mut scenario = Scenario::default();
    let mut node: Option<u32> = None;
    let mut base_port: u16 = 45700;
    let mut trace_path: Option<PathBuf> = None;
    let mut epoch_micros: Option<u64> = None;

    let mut it = args;
    while let Some(a) = it.next() {
        match scenario.accept(&a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => return usage(&e),
        }
        let mut value = |name: &str| it.next().ok_or_else(|| format!("--{name} needs a value"));
        let r = match a.as_str() {
            "--node" => value("node").and_then(|v| {
                v.parse().map(|n| node = Some(n)).map_err(|_| format!("bad --node {v:?}"))
            }),
            "--base-port" => value("base-port").and_then(|v| {
                v.parse().map(|p| base_port = p).map_err(|_| format!("bad --base-port {v:?}"))
            }),
            "--trace" => value("trace").map(|v| trace_path = Some(PathBuf::from(v))),
            "--epoch-micros" => value("epoch-micros").and_then(|v| {
                v.parse()
                    .map(|e| epoch_micros = Some(e))
                    .map_err(|_| format!("bad --epoch-micros {v:?}"))
            }),
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = r {
            return usage(&e);
        }
    }
    let Some(node) = node else {
        return usage("run needs --node ID");
    };
    if node as usize >= scenario.node_count() {
        return usage(&format!(
            "--node {node} out of range: scenario has {} nodes",
            scenario.node_count()
        ));
    }

    let cfg = scenario.config();
    let warmup = cfg.warmup;
    let packet_bits = cfg.traffic.packet_bits;

    // Deterministic construction replay: every process of the cluster
    // runs this identically and arrives at the identical world.
    let mut proto = ReferProtocol::new(ReferConfig::default());
    let ctx = runner::construct(cfg.clone(), &mut proto, warmup);
    let world = WorldView::from_sim(&ctx);
    drop(ctx);
    let me = NodeId(node);
    let is_sensor = world.sensor_ids().contains(&me);
    let engine = EngineCore::new(proto, world);

    let socket = match UdpSocket::bind(("127.0.0.1", base_port + node as u16)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("refer-node[{node}]: cannot bind port {}: {e}", base_port + node as u16);
            return ExitCode::FAILURE;
        }
    };

    let trace: Box<dyn std::io::Write + Send> = match &trace_path {
        Some(p) => match std::fs::File::create(p) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("refer-node[{node}]: cannot create trace file {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::sink()),
    };

    let mut daemon = Daemon {
        engine,
        socket,
        base_port,
        me,
        trace: BufWriter::new(trace),
        created_us: HashMap::new(),
        timers: BinaryHeap::new(),
        packet_bits,
        sent: 0,
        delivered: 0,
    };

    // Synchronize the cluster clock: all processes begin the live phase
    // at the shared epoch, so their trace timestamps are comparable.
    if let Some(epoch) = epoch_micros {
        let now = now_unix_micros();
        if epoch > now {
            std::thread::sleep(Duration::from_micros(epoch - now));
        }
    }
    let t0 = Instant::now();
    let warmup_us = warmup.as_micros();
    let sim_now_us = |t0: &Instant| warmup_us + t0.elapsed().as_micros() as u64;

    // Traffic: this sensor emits `rate_pps` evenly spaced packets/s for
    // the measured window, then keeps forwarding during the drain so
    // packets in flight elsewhere can still complete.
    let gap_us = 1_000_000 / scenario.rate_pps;
    let stop_emit_us = warmup_us + scenario.duration_s * 1_000_000;
    let drain_until_us = stop_emit_us + 1_500_000;
    let mut next_emit_us = if is_sensor { Some(warmup_us) } else { None };
    let mut seq: u64 = 0;

    let mut buf = vec![0u8; 64 * 1024];

    loop {
        let now_us = sim_now_us(&t0);
        if now_us >= drain_until_us {
            break;
        }
        daemon.fire_due_timers(now_us);
        while let Some(at) = next_emit_us {
            if at > now_us || at >= stop_emit_us {
                break;
            }
            let packet = DataId((u64::from(me.0) << 32) | seq);
            seq += 1;
            daemon.emit(now_us, packet);
            next_emit_us = Some(at + gap_us);
        }
        // Sleep in the socket until the next deadline (timer, emission or
        // the 5 ms poll cap), whichever is soonest.
        let mut wake_us = now_us + 5_000;
        if let Some(&Reverse((t, _))) = daemon.timers.peek() {
            wake_us = wake_us.min(t);
        }
        if let Some(t) = next_emit_us {
            if t < stop_emit_us {
                wake_us = wake_us.min(t);
            }
        }
        let timeout = Duration::from_micros(wake_us.saturating_sub(now_us).max(200));
        let _ = daemon.socket.set_read_timeout(Some(timeout));
        match daemon.socket.recv_from(&mut buf) {
            Ok((n, _)) => {
                let now_us = sim_now_us(&t0);
                let datagram = buf[..n].to_vec();
                daemon.on_datagram(now_us, &datagram);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => {
                eprintln!("refer-node[{node}]: socket error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if daemon.trace.flush().is_err() {
        eprintln!("refer-node[{node}]: trace flush failed");
        return ExitCode::FAILURE;
    }
    println!(
        "refer-node[{node}]: done (emitted {seq}, sent {} frames, delivered {})",
        daemon.sent, daemon.delivered
    );
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------
// `cluster`: launcher + sim-vs-measured comparison.
// ---------------------------------------------------------------------

/// Delivery/latency aggregates computed identically for the simulated
/// and the measured trace (both via [`PacketLedger`], measured packets
/// only).
#[derive(Debug, Clone, Copy)]
struct TraceMetrics {
    offered: usize,
    delivered: usize,
    delivery: f64,
    p50_s: f64,
    p95_s: f64,
    p99_s: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ledger_metrics(ledger: &PacketLedger) -> TraceMetrics {
    let mut offered = 0usize;
    let mut delays: Vec<f64> = Vec::new();
    for rec in ledger.packets() {
        if !rec.measured {
            continue;
        }
        offered += 1;
        if let refer_obs::Outcome::Delivered { delay_s, .. } = rec.outcome {
            delays.push(delay_s);
        }
    }
    delays.sort_by(|a, b| a.total_cmp(b));
    TraceMetrics {
        offered,
        delivered: delays.len(),
        delivery: if offered == 0 { 0.0 } else { delays.len() as f64 / offered as f64 },
        p50_s: percentile(&delays, 0.50),
        p95_s: percentile(&delays, 0.95),
        p99_s: percentile(&delays, 0.99),
    }
}

/// Runs the serial simulator on the cluster scenario and folds its trace
/// into a ledger: the prediction side of the comparison.
fn predict(cfg: SimConfig) -> TraceMetrics {
    let (sink, events) = VecSink::new();
    let mut proto = ReferProtocol::new(ReferConfig::default());
    let _ = runner::run_with_sinks(cfg, &mut proto, vec![Box::new(sink)]);
    ledger_metrics(&PacketLedger::from_events(events.take()))
}

fn cmd_cluster(args: impl Iterator<Item = String>) -> ExitCode {
    let mut scenario = Scenario::default();
    let mut base_port: u16 = 45700;
    let mut out_dir = PathBuf::from("cluster-traces");
    let mut json_path: Option<PathBuf> = None;
    let mut tolerance = 0.10;

    let mut it = args;
    while let Some(a) = it.next() {
        match scenario.accept(&a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => return usage(&e),
        }
        let mut value = |name: &str| it.next().ok_or_else(|| format!("--{name} needs a value"));
        let r = match a.as_str() {
            "--base-port" => value("base-port").and_then(|v| {
                v.parse().map(|p| base_port = p).map_err(|_| format!("bad --base-port {v:?}"))
            }),
            "--out" => value("out").map(|v| out_dir = PathBuf::from(v)),
            "--json" => value("json").map(|v| json_path = Some(PathBuf::from(v))),
            "--tolerance" => value("tolerance").and_then(|v| match v.parse::<f64>() {
                Ok(t) if t.is_finite() && t >= 0.0 => {
                    tolerance = t;
                    Ok(())
                }
                _ => Err(format!("--tolerance needs a non-negative number, got {v}")),
            }),
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = r {
            return usage(&e);
        }
    }

    let nodes = scenario.node_count();
    let cfg = scenario.config();
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cluster: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    println!(
        "cluster: predicting with the serial simulator (seed {}, {} nodes)...",
        scenario.seed, nodes
    );
    let sim = predict(cfg);

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cluster: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The live phase starts 3 s from now: enough for every process to
    // replay construction and bind its socket.
    let epoch = now_unix_micros() + 3_000_000;
    println!("cluster: spawning {nodes} refer-node processes on 127.0.0.1:{base_port}+id...");
    let wall_start = Instant::now();
    let mut children = Vec::with_capacity(nodes);
    for id in 0..nodes {
        let trace = out_dir.join(format!("node-{id}.jsonl"));
        let child = std::process::Command::new(&exe)
            .args([
                "run",
                "--node",
                &id.to_string(),
                "--seed",
                &scenario.seed.to_string(),
                "--sensors",
                &scenario.sensors.to_string(),
                "--rate",
                &scenario.rate_pps.to_string(),
                "--duration",
                &scenario.duration_s.to_string(),
                "--base-port",
                &base_port.to_string(),
                "--epoch-micros",
                &epoch.to_string(),
                "--trace",
            ])
            .arg(&trace)
            .stdout(std::process::Stdio::null())
            .spawn();
        match child {
            Ok(c) => children.push((id, c)),
            Err(e) => {
                eprintln!("cluster: cannot spawn node {id}: {e}");
                for (_, mut c) in children {
                    let _ = c.kill();
                }
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failed = 0usize;
    for (id, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("cluster: node {id} exited with {status}");
                failed += 1;
            }
            Err(e) => {
                eprintln!("cluster: wait for node {id} failed: {e}");
                failed += 1;
            }
        }
    }
    let wall_s = wall_start.elapsed().as_secs_f64();
    if failed > 0 {
        eprintln!("cluster: {failed} node processes failed");
        return ExitCode::FAILURE;
    }

    // Merge the per-node traces into one ledger: each packet's origin,
    // hops and delivery come from different processes' files.
    let mut ledger = PacketLedger::default();
    let mut bad_lines = 0usize;
    for id in 0..nodes {
        let path = out_dir.join(format!("node-{id}.jsonl"));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cluster: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            match from_jsonl_line(line) {
                Ok(ev) => ledger.fold(ev),
                Err(_) => bad_lines += 1,
            }
        }
    }
    if bad_lines > 0 {
        eprintln!("cluster: {bad_lines} undecodable trace lines");
    }
    let measured = ledger_metrics(&ledger);

    println!();
    println!("sim-predicted vs. measured (seed {}, {nodes} nodes)", scenario.seed);
    println!("{:<22} {:>12} {:>12}", "", "sim", "measured");
    println!("{:<22} {:>12} {:>12}", "packets offered", sim.offered, measured.offered);
    println!("{:<22} {:>12} {:>12}", "packets delivered", sim.delivered, measured.delivered);
    println!("{:<22} {:>12.4} {:>12.4}", "delivery ratio", sim.delivery, measured.delivery);
    println!("{:<22} {:>12.2} {:>12.2}", "delay p50 (ms)", sim.p50_s * 1e3, measured.p50_s * 1e3);
    println!("{:<22} {:>12.2} {:>12.2}", "delay p95 (ms)", sim.p95_s * 1e3, measured.p95_s * 1e3);
    println!("{:<22} {:>12.2} {:>12.2}", "delay p99 (ms)", sim.p99_s * 1e3, measured.p99_s * 1e3);
    println!("wall time: {wall_s:.1} s");

    if let Some(path) = &json_path {
        // Field names mirror the bench schema's `daemon_latency` section
        // so downstream tooling reads both the same way.
        let json = format!(
            concat!(
                "{{\"nodes\":{},\"measured_delivery\":{},\"sim_delivery\":{},",
                "\"delay_p50_s\":{},\"delay_p95_s\":{},\"delay_p99_s\":{},\"wall_s\":{}}}\n"
            ),
            nodes,
            measured.delivery,
            sim.delivery,
            measured.p50_s,
            measured.p95_s,
            measured.p99_s,
            wall_s
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cluster: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("comparison artifact: {}", path.display());
    }

    if measured.offered == 0 {
        eprintln!("cluster: FAILED — no measured packets were offered");
        return ExitCode::FAILURE;
    }
    let divergence = (measured.delivery - sim.delivery).abs();
    if divergence > tolerance {
        eprintln!(
            "cluster: FAILED — measured delivery {:.4} diverges from predicted {:.4} \
             by {divergence:.4} (> {tolerance})",
            measured.delivery, sim.delivery
        );
        return ExitCode::FAILURE;
    }
    println!("cluster: PASSED — delivery divergence {divergence:.4} within tolerance {tolerance}");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cluster scenario must be one the simulator predicts well for:
    /// the comparison (and the CI gate on it) is only meaningful if the
    /// sim side delivers reliably under zero faults.
    #[test]
    fn sim_prediction_on_cluster_scenario_is_healthy() {
        let scenario = Scenario::default();
        let metrics = predict(scenario.config());
        assert!(metrics.offered > 0, "scenario offers no measured traffic: {metrics:?}");
        assert!(
            metrics.delivery > 0.8,
            "cluster scenario must deliver reliably in the simulator: {metrics:?}"
        );
    }

    #[test]
    fn scenario_flags_validate() {
        let mut s = Scenario::default();
        let mut empty = std::iter::empty::<String>();
        assert!(s.accept("--rate", &mut empty).is_err());
        let mut bad = vec!["0".to_string()].into_iter();
        assert!(s.accept("--rate", &mut bad).is_err());
        let mut small = vec!["3".to_string()].into_iter();
        assert!(s.accept("--sensors", &mut small).is_err());
        let mut ok = vec!["12".to_string()].into_iter();
        assert!(matches!(s.accept("--sensors", &mut ok), Ok(true)));
        assert_eq!(s.sensors, 12);
        assert!(matches!(s.accept("--unknown", &mut empty), Ok(false)));
    }

    /// The launcher must satisfy the cluster's floor: at least 12 real
    /// processes end to end.
    #[test]
    fn default_scenario_spawns_at_least_12_processes() {
        assert!(Scenario::default().node_count() >= 12);
    }
}
