//! Datagram codec for inter-daemon frames: the canonical JSON codec
//! (the same `serde`-shim `Value` tree the trace JSONL uses) wrapped in
//! the `refer-obs` length-prefixed binary framing.
//!
//! A datagram carries one envelope: the destination node plus the exact
//! [`Message`] the receiving protocol hook sees. Every [`ReferMsg`]
//! variant is encodable — a cluster normally only puts `Data` frames on
//! the wire (construction is replayed locally, maintenance is quiescent
//! under the Oracle model with zero faults), but the codec refuses to be
//! the reason a control frame can't travel.

use kautz::KautzId;
use refer::{DataFrame, ReferMsg};
use refer_obs::{encode_frame, FrameDecoder, FrameError};
use serde::{json, Error, Value};
use wsan_sim::{DataId, EnergyAccount, Message, NodeId};

fn map(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn tagged(tag: &str, body: Value) -> Value {
    map(vec![(tag, body)])
}

fn node(n: NodeId) -> Value {
    Value::U64(u64::from(n.0))
}

fn get<'v>(v: &'v Value, key: &str) -> Result<&'v Value, Error> {
    v.get(key).ok_or_else(|| Error::msg(format!("missing field {key:?}")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, Error> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| Error::msg(format!("field {key:?} is not an unsigned integer")))
}

fn get_node(v: &Value, key: &str) -> Result<NodeId, Error> {
    let raw = get_u64(v, key)?;
    u32::try_from(raw)
        .map(NodeId)
        .map_err(|_| Error::msg(format!("field {key:?} out of NodeId range: {raw}")))
}

fn get_u8(v: &Value, key: &str) -> Result<u8, Error> {
    let raw = get_u64(v, key)?;
    u8::try_from(raw).map_err(|_| Error::msg(format!("field {key:?} out of u8 range: {raw}")))
}

fn kid_value(kid: &KautzId) -> Value {
    map(vec![
        ("digits", Value::Seq(kid.digits().iter().map(|&d| Value::U64(u64::from(d))).collect())),
        ("degree", Value::U64(u64::from(kid.degree()))),
    ])
}

fn parse_kid(v: &Value) -> Result<KautzId, Error> {
    let digits = get(v, "digits")?
        .as_seq()
        .ok_or_else(|| Error::msg("field \"digits\" is not a sequence"))?
        .iter()
        .map(|d| {
            d.as_u64()
                .and_then(|d| u8::try_from(d).ok())
                .ok_or_else(|| Error::msg("KID digit out of range"))
        })
        .collect::<Result<Vec<u8>, Error>>()?;
    let degree = get_u8(v, "degree")?;
    KautzId::new(digits, degree).map_err(|e| Error::msg(format!("invalid KID on the wire: {e}")))
}

fn frame_value(frame: &DataFrame) -> Value {
    let mut fields = vec![
        ("data", Value::U64(frame.data.0)),
        ("dest_cell", Value::U64(frame.dest_cell as u64)),
        ("dest_kid", kid_value(&frame.dest_kid)),
    ];
    if let Some(forced) = frame.forced {
        fields.push(("forced", Value::U64(u64::from(forced))));
    }
    fields.push(("appended", Value::U64(u64::from(frame.appended))));
    fields.push(("hops", Value::U64(u64::from(frame.hops))));
    map(fields)
}

fn parse_frame(v: &Value) -> Result<DataFrame, Error> {
    Ok(DataFrame {
        data: DataId(get_u64(v, "data")?),
        dest_cell: get_u64(v, "dest_cell")? as usize,
        dest_kid: parse_kid(get(v, "dest_kid")?)?,
        forced: match v.get("forced") {
            Some(f) => Some(
                f.as_u64()
                    .and_then(|f| u8::try_from(f).ok())
                    .ok_or_else(|| Error::msg("field \"forced\" out of u8 range"))?,
            ),
            None => None,
        },
        appended: get_u8(v, "appended")?,
        hops: get_u8(v, "hops")?,
    })
}

fn payload_value(msg: &ReferMsg) -> Value {
    match msg {
        ReferMsg::Ctrl => tagged("Ctrl", Value::Null),
        ReferMsg::Assignment => tagged("Assignment", Value::Null),
        ReferMsg::PathQuery { qid, ttl, target, path } => tagged(
            "PathQuery",
            map(vec![
                ("qid", Value::U64(*qid)),
                ("ttl", Value::U64(u64::from(*ttl))),
                ("target", node(*target)),
                (
                    "path",
                    Value::Seq(
                        path.iter()
                            .map(|&(n, battery)| {
                                Value::Seq(vec![node(n), Value::F64(battery)])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        ReferMsg::PathAssign { assignments, hop } => tagged(
            "PathAssign",
            map(vec![
                (
                    "assignments",
                    Value::Seq(
                        assignments
                            .iter()
                            .map(|(n, kid)| Value::Seq(vec![node(*n), kid_value(kid)]))
                            .collect(),
                    ),
                ),
                ("hop", Value::U64(*hop as u64)),
            ]),
        ),
        ReferMsg::StartStage2 { qid, target } => tagged(
            "StartStage2",
            map(vec![("qid", Value::U64(*qid)), ("target", node(*target))]),
        ),
        ReferMsg::CellReady => tagged("CellReady", Value::Null),
        ReferMsg::Beacon => tagged("Beacon", Value::Null),
        ReferMsg::Gossip { accused } => tagged(
            "Gossip",
            map(vec![("accused", Value::Seq(accused.iter().map(|&n| node(n)).collect()))]),
        ),
        ReferMsg::Probe => tagged("Probe", Value::Null),
        ReferMsg::Replace => tagged("Replace", Value::Null),
        ReferMsg::ReplaceNotice => tagged("ReplaceNotice", Value::Null),
        ReferMsg::Data(frame) => tagged("Data", frame_value(frame)),
    }
}

fn parse_pair<'v>(v: &'v Value, what: &str) -> Result<(&'v Value, &'v Value), Error> {
    match v.as_seq() {
        Some([a, b]) => Ok((a, b)),
        _ => Err(Error::msg(format!("{what} is not a 2-element sequence"))),
    }
}

fn parse_payload(v: &Value) -> Result<ReferMsg, Error> {
    let entries = v.as_map().ok_or_else(|| Error::msg("payload is not a map"))?;
    let [(tag, body)] = entries else {
        return Err(Error::msg("payload must have exactly one variant tag"));
    };
    match tag.as_str() {
        "Ctrl" => Ok(ReferMsg::Ctrl),
        "Assignment" => Ok(ReferMsg::Assignment),
        "PathQuery" => Ok(ReferMsg::PathQuery {
            qid: get_u64(body, "qid")?,
            ttl: get_u8(body, "ttl")?,
            target: get_node(body, "target")?,
            path: get(body, "path")?
                .as_seq()
                .ok_or_else(|| Error::msg("field \"path\" is not a sequence"))?
                .iter()
                .map(|entry| {
                    let (n, battery) = parse_pair(entry, "path entry")?;
                    let n = n
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| Error::msg("path node out of range"))?;
                    let battery =
                        battery.as_f64().ok_or_else(|| Error::msg("path battery not a number"))?;
                    Ok((NodeId(n), battery))
                })
                .collect::<Result<Vec<_>, Error>>()?,
        }),
        "PathAssign" => Ok(ReferMsg::PathAssign {
            assignments: get(body, "assignments")?
                .as_seq()
                .ok_or_else(|| Error::msg("field \"assignments\" is not a sequence"))?
                .iter()
                .map(|entry| {
                    let (n, kid) = parse_pair(entry, "assignment entry")?;
                    let n = n
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| Error::msg("assignment node out of range"))?;
                    Ok((NodeId(n), parse_kid(kid)?))
                })
                .collect::<Result<Vec<_>, Error>>()?,
            hop: get_u64(body, "hop")? as usize,
        }),
        "StartStage2" => Ok(ReferMsg::StartStage2 {
            qid: get_u64(body, "qid")?,
            target: get_node(body, "target")?,
        }),
        "CellReady" => Ok(ReferMsg::CellReady),
        "Beacon" => Ok(ReferMsg::Beacon),
        "Gossip" => Ok(ReferMsg::Gossip {
            accused: get(body, "accused")?
                .as_seq()
                .ok_or_else(|| Error::msg("field \"accused\" is not a sequence"))?
                .iter()
                .map(|n| {
                    n.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .map(NodeId)
                        .ok_or_else(|| Error::msg("accused node out of range"))
                })
                .collect::<Result<Vec<_>, Error>>()?,
        }),
        "Probe" => Ok(ReferMsg::Probe),
        "Replace" => Ok(ReferMsg::Replace),
        "ReplaceNotice" => Ok(ReferMsg::ReplaceNotice),
        "Data" => Ok(ReferMsg::Data(parse_frame(body)?)),
        other => Err(Error::msg(format!("unknown payload variant {other:?}"))),
    }
}

/// Encodes one datagram: a length-prefixed frame holding the canonical
/// JSON encoding of `(to, created_us, msg)`. `created_us` is the cluster
/// clock (microseconds on the shared epoch) at which the application
/// packet inside a `Data` payload was created — it rides the envelope so
/// the delivering daemon can account end-to-end delay without a
/// rendezvous; zero for control payloads.
pub fn encode_datagram(to: NodeId, created_us: u64, msg: &Message<ReferMsg>) -> Vec<u8> {
    let envelope = map(vec![
        ("to", node(to)),
        ("created_us", Value::U64(created_us)),
        ("from", node(msg.from)),
        ("size_bits", Value::U64(u64::from(msg.size_bits))),
        ("account", Value::Str(refer_obs::account_str(msg.account).to_string())),
        ("broadcast", Value::Bool(msg.broadcast)),
        ("payload", payload_value(&msg.payload)),
    ]);
    encode_frame(json::to_string(&envelope).as_bytes())
}

/// Decodes one datagram produced by [`encode_datagram`].
pub fn decode_datagram(bytes: &[u8]) -> Result<(NodeId, u64, Message<ReferMsg>), Error> {
    let mut decoder = FrameDecoder::default();
    decoder.feed(bytes);
    let payload = match decoder.next_frame() {
        Ok(Some(p)) => p,
        Ok(None) => return Err(Error::msg("truncated datagram: incomplete frame")),
        Err(FrameError::Oversize { declared }) => {
            return Err(Error::msg(format!("oversize frame on the wire: {declared} bytes")))
        }
    };
    if !decoder.is_empty() {
        return Err(Error::msg("trailing bytes after frame in datagram"));
    }
    let text = std::str::from_utf8(&payload).map_err(|_| Error::msg("frame is not UTF-8"))?;
    let v = json::from_str(text)?;
    let to = get_node(&v, "to")?;
    let created_us = get_u64(&v, "created_us")?;
    let account = match get(&v, "account")?.as_str() {
        Some("construction") => EnergyAccount::Construction,
        Some("communication") => EnergyAccount::Communication,
        other => return Err(Error::msg(format!("unknown energy account {other:?}"))),
    };
    let msg = Message {
        from: get_node(&v, "from")?,
        size_bits: u32::try_from(get_u64(&v, "size_bits")?)
            .map_err(|_| Error::msg("size_bits out of u32 range"))?,
        account,
        broadcast: get(&v, "broadcast")?
            .as_bool()
            .ok_or_else(|| Error::msg("field \"broadcast\" is not a bool"))?,
        payload: parse_payload(get(&v, "payload")?)?,
    };
    Ok((to, created_us, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(payload: ReferMsg) -> Message<ReferMsg> {
        Message {
            from: NodeId(7),
            size_bits: 1024,
            account: EnergyAccount::Communication,
            broadcast: false,
            payload,
        }
    }

    fn round_trip(payload: ReferMsg) -> (NodeId, u64, Message<ReferMsg>) {
        let wire = encode_datagram(NodeId(3), 12_345, &msg(payload));
        decode_datagram(&wire).expect("decode")
    }

    #[test]
    fn data_frame_round_trips() {
        let frame = DataFrame {
            data: DataId(0x0000_0005_0000_002a),
            dest_cell: 2,
            dest_kid: KautzId::new(vec![0, 1, 2], 2).unwrap(),
            forced: Some(1),
            appended: 3,
            hops: 9,
        };
        let (to, created_us, got) = round_trip(ReferMsg::Data(frame.clone()));
        assert_eq!(to, NodeId(3));
        assert_eq!(created_us, 12_345);
        assert_eq!(got.from, NodeId(7));
        assert_eq!(got.size_bits, 1024);
        assert_eq!(got.account, EnergyAccount::Communication);
        assert!(!got.broadcast);
        match got.payload {
            ReferMsg::Data(d) => {
                assert_eq!(d.data, frame.data);
                assert_eq!(d.dest_cell, frame.dest_cell);
                assert_eq!(d.dest_kid, frame.dest_kid);
                assert_eq!(d.forced, frame.forced);
                assert_eq!(d.appended, frame.appended);
                assert_eq!(d.hops, frame.hops);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn every_control_variant_round_trips() {
        let kid = |digits: Vec<u8>| KautzId::new(digits, 2).unwrap();
        let variants = vec![
            ReferMsg::Ctrl,
            ReferMsg::Assignment,
            ReferMsg::PathQuery {
                qid: 42,
                ttl: 3,
                target: NodeId(9),
                path: vec![(NodeId(1), 95.5), (NodeId(2), 80.25)],
            },
            ReferMsg::PathAssign {
                assignments: vec![(NodeId(4), kid(vec![0, 1])), (NodeId(5), kid(vec![1, 2]))],
                hop: 1,
            },
            ReferMsg::StartStage2 { qid: 7, target: NodeId(11) },
            ReferMsg::CellReady,
            ReferMsg::Beacon,
            ReferMsg::Gossip { accused: vec![NodeId(3), NodeId(8)] },
            ReferMsg::Probe,
            ReferMsg::Replace,
            ReferMsg::ReplaceNotice,
        ];
        for payload in variants {
            let tag = format!("{payload:?}");
            let (_, _, got) = round_trip(payload);
            // ReferMsg has no PartialEq; the Debug form is a faithful
            // structural fingerprint for these variants.
            assert_eq!(format!("{:?}", got.payload), tag);
        }
    }

    #[test]
    fn corrupt_datagrams_are_rejected_not_panicked() {
        assert!(decode_datagram(&[]).is_err());
        assert!(decode_datagram(&[1, 2, 3]).is_err());
        let mut wire = encode_datagram(NodeId(0), 0, &msg(ReferMsg::Beacon));
        wire.truncate(wire.len() - 1);
        assert!(decode_datagram(&wire).is_err());
        let mut trailing = encode_datagram(NodeId(0), 0, &msg(ReferMsg::Beacon));
        trailing.push(0);
        assert!(decode_datagram(&trailing).is_err());
    }
}
