//! # refer-baselines — the comparison systems of the REFER evaluation
//!
//! Section IV of the paper compares REFER against three systems, all
//! implemented here on the same [`wsan_sim`] substrate:
//!
//! * [`DaTreeProtocol`] — DaTree \[2\]: one broadcast-built tree per
//!   actuator; failures re-attach by broadcasting toward the root and the
//!   source retransmits.
//! * [`DdearProtocol`] — D-DEAR \[8\]: energy-based 2-hop clustering; heads
//!   keep flooding-discovered multi-hop paths to the closest actuator and
//!   rebuild them by broadcast on failure.
//! * [`KautzOverlayProtocol`] — Kautz-overlay \[20\]: REFER's cell structure
//!   and routing protocol, but with KIDs on random sensors (application
//!   layer), so every overlay arc is a flooding-built multi-hop physical
//!   path.
//!
//! The shared [`flood`] module implements the charged route-discovery
//! flood they all recover with (the "topological routing" of \[35\]).
//!
//! [`KautzFabricProtocol`] is not one of the paper's comparison systems:
//! it is the heavy-traffic testbed where the whole network is a single
//! Kautz graph, used to compare shortest against Faber–Streib regular
//! routing under traffic matrices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datree;
pub mod ddear;
pub mod fabric;
pub mod flood;
pub mod kautz_overlay;

pub use datree::{DaTreeConfig, DaTreeProtocol, DaTreeStats};
pub use ddear::{DdearConfig, DdearProtocol, DdearStats};
pub use fabric::{fabric_config, FabricFrame, KautzFabricProtocol};
pub use kautz_overlay::{KautzOverlayConfig, KautzOverlayProtocol, OverlayStats};
