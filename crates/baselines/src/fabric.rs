//! A bare Kautz *fabric*: the whole network is one Kautz graph.
//!
//! The heavy-traffic workloads (ROADMAP item 2) need a testbed where the
//! routing strategy is the only variable: sensor `i` *is* vertex `i` of
//! `K(d, k)`, every arc is a direct radio link (the scenario from
//! [`fabric_config`] makes the radio range cover the whole area), and a
//! packet to sensor `v` simply walks the graph. No cells, no embedding, no
//! ACK machinery — congestion comes purely from the MAC queueing model, so
//! the difference between greedy shortest routing (hot arcs under
//! all-to-all load) and Faber–Streib regular routing (uniform arc load at
//! the cost of slightly longer paths) is directly visible in the
//! queue-delay tail and the hot-link utilization.
//!
//! The per-hop state is three bytes carried in the frame (destination,
//! regular-routing digit counter, hop count); the per-node tables are the
//! digit words (`n·k` bytes) and the successor-by-digit map
//! (`n·(d+1)` u32s), so the fabric scales to the `n ≥ 10⁴` graphs the
//! sharded engine targets without the `O(n²)` tables of the per-cell
//! [`RouteTable`](kautz::RouteTable).

use kautz::KautzId;
use wsan_sim::{
    ActuatorPlacement, Ctx, DataId, DropReason, EnergyAccount, HopReason, Message, NodeId,
    Protocol, RoutingStrategy, SensorPlacement, SimConfig, TrafficPattern,
};

/// No successor along this digit (it equals the vertex's last letter).
const NO_ARC: u32 = u32::MAX;

/// A data frame walking the fabric.
#[derive(Debug, Clone)]
pub struct FabricFrame {
    /// The application packet being carried.
    pub data: DataId,
    /// Destination sensor (== its vertex index).
    pub dest: u32,
    /// Regular routing's digit counter: how many destination digits have
    /// been appended so far (unused under shortest routing).
    pub appended: u8,
    /// Transmissions so far, against the hop budget.
    pub hops: u8,
}

/// The fabric protocol: direct Kautz routing over the whole sensor field.
///
/// Requires `cfg.sensors == (d+1)·d^(k-1)` and a radio range covering every
/// sensor pair (use [`fabric_config`]); packets without a matrix-assigned
/// destination (the paper trickle) are dropped, so run it under a
/// [`TrafficPattern`] matrix.
#[derive(Debug, Clone)]
pub struct KautzFabricProtocol {
    degree: u8,
    k: usize,
    n: usize,
    /// Digit words, row-major `n × k`.
    digits: Vec<u8>,
    /// Successor index by out-digit, row-major `n × (d+1)`; [`NO_ARC`]
    /// where the digit equals the vertex's last letter.
    succ: Vec<u32>,
    /// Maximum transmissions per packet before giving up: `2(k+1)` leaves
    /// headroom over both strategies' worst case of `k` hops.
    hop_limit: u8,
}

impl KautzFabricProtocol {
    /// Builds the fabric tables for `K(degree, k)`.
    pub fn new(degree: u8, k: usize) -> Self {
        let d = degree as usize;
        let n = (d + 1) * d.pow((k - 1) as u32);
        let mut digits = Vec::with_capacity(n * k);
        for index in 0..n {
            digits.extend_from_slice(KautzId::from_index(index, degree, k).digits());
        }
        let mut succ = vec![NO_ARC; n * (d + 1)];
        for u in 0..n {
            let last = digits[u * k + k - 1];
            for alpha in 0..=degree {
                if alpha == last {
                    continue;
                }
                // Successor along `alpha` is the left shift with `alpha`
                // appended: digits (u_2 .. u_k alpha).
                let mut word: Vec<u8> = digits[u * k + 1..(u + 1) * k].to_vec();
                word.push(alpha);
                let id = KautzId::new(word, degree).expect("shift-append stays a Kautz word");
                succ[u * (d + 1) + alpha as usize] = id.to_index() as u32;
            }
        }
        let hop_limit = (2 * (k + 1)).min(u8::MAX as usize) as u8;
        KautzFabricProtocol { degree, k, n, digits, succ, hop_limit }
    }

    /// Number of vertices / required sensor count.
    pub fn node_count(&self) -> usize {
        self.n
    }

    fn digits_of(&self, u: usize) -> &[u8] {
        &self.digits[u * self.k..(u + 1) * self.k]
    }

    fn succ_by_digit(&self, u: usize, alpha: u8) -> usize {
        let next = self.succ[u * (self.degree as usize + 1) + alpha as usize];
        debug_assert_ne!(next, NO_ARC, "no arc along the vertex's own last digit");
        next as usize
    }

    /// Longest suffix of `u` matching a prefix of `v` (0 when `u != v`
    /// share nothing; callers never ask about `u == v`).
    fn overlap(&self, u: usize, v: usize) -> usize {
        let (k, du, dv) = (self.k, self.digits_of(u), self.digits_of(v));
        (1..k).rev().find(|&t| du[k - t..] == dv[..t]).unwrap_or(0)
    }

    /// The greedy shortest next hop: append the first destination digit
    /// beyond the current overlap. Always a legal arc — with overlap `t`,
    /// `v_{t+1}` differs from `u`'s last letter (`= v_t` for `t ≥ 1`; for
    /// `t = 0` equality would make the overlap 1).
    fn shortest_next(&self, u: usize, v: usize) -> usize {
        self.succ_by_digit(u, self.digits_of(v)[self.overlap(u, v)])
    }

    /// One Faber–Streib regular hop: append destination digit
    /// `v_{appended+1}` and advance the counter, starting from `v_2` when
    /// `v_1` collides with `u`'s last digit (the overlap is then at least
    /// 1, so no detour is needed). Mirrors
    /// [`RouteTable::regular_next`](kautz::RouteTable::regular_next).
    fn regular_next(&self, u: usize, v: usize, appended: u8) -> (usize, u8) {
        let mut appended = if (appended as usize) < self.k { appended } else { 0 };
        let u_last = self.digits_of(u)[self.k - 1];
        if self.digits_of(v)[appended as usize] == u_last {
            appended = u8::from(self.digits_of(v)[0] == u_last);
        }
        let next_digit = self.digits_of(v)[appended as usize];
        (self.succ_by_digit(u, next_digit), appended + 1)
    }

    /// Delivers, drops, or forwards `frame` one hop from `at`.
    fn step(&mut self, ctx: &mut Ctx<FabricFrame>, at: NodeId, mut frame: FabricFrame) {
        let (u, v) = (at.index(), frame.dest as usize);
        if u == v {
            ctx.deliver_data_with_hops(frame.data, at, u32::from(frame.hops));
            return;
        }
        if frame.hops >= self.hop_limit {
            ctx.drop_data_reason(frame.data, DropReason::HopLimit);
            return;
        }
        let next = match ctx.config().routing {
            RoutingStrategy::Shortest => self.shortest_next(u, v),
            RoutingStrategy::Regular => {
                let (next, appended) = self.regular_next(u, v, frame.appended);
                frame.appended = appended;
                next
            }
        };
        frame.hops += 1;
        let next = NodeId(next as u32);
        let size = ctx.data_size_bits(frame.data).unwrap_or(ctx.config().traffic.packet_bits);
        ctx.trace_hop(frame.data, at, next, HopReason::KautzNext);
        if !ctx.send(at, next, size, EnergyAccount::Communication, frame.clone()) {
            // The only link failure in the fabric scenario is a faulty
            // endpoint; the fabric has no repair path.
            ctx.drop_data_reason(frame.data, DropReason::NoRoute);
        }
    }
}

impl Protocol for KautzFabricProtocol {
    type Payload = FabricFrame;

    fn name(&self) -> &'static str {
        "KautzFabric"
    }

    fn on_init(&mut self, ctx: &mut Ctx<FabricFrame>) {
        assert_eq!(
            ctx.config().sensors,
            self.n,
            "the fabric maps sensor i to vertex i: sensors must equal K({}, {})'s {} vertices",
            self.degree,
            self.k,
            self.n
        );
    }

    fn on_app_data(&mut self, ctx: &mut Ctx<FabricFrame>, src: NodeId, data: DataId) {
        let Some(dest) = ctx.data_dest(data) else {
            // The paper trickle assigns no destination sensor; the fabric
            // only routes matrix traffic.
            ctx.drop_data(data);
            return;
        };
        let frame = FabricFrame { data, dest: dest.0, appended: 0, hops: 0 };
        self.step(ctx, src, frame);
    }

    fn on_message(&mut self, ctx: &mut Ctx<FabricFrame>, at: NodeId, msg: Message<FabricFrame>) {
        self.step(ctx, at, msg.payload);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<FabricFrame>, _at: NodeId, _tag: u64) {}
}

// The fabric's state (the routing tables) is built before the run and never
// mutated; every hook acts solely as the node it names, so the protocol
// runs unchanged under the sharded engine.
impl wsan_sim::ShardableProtocol for KautzFabricProtocol {}

/// The heavy-traffic fabric scenario for `K(degree, k)`: one sensor per
/// vertex, static nodes, radio range covering the whole area (every arc is
/// one hop), all-to-all matrix traffic at `offered_pps`, and a bitrate low
/// enough that tens of kilopackets/second congest the MAC queues.
///
/// With every pair in radio range the spatial grid collapses to one cell,
/// so the sharded engine runs this scenario as a single shard — sharded
/// results are still compared at different thread counts, which must agree
/// bit for bit.
pub fn fabric_config(degree: u8, k: usize, offered_pps: f64) -> SimConfig {
    let d = degree as usize;
    let n = (d + 1) * d.pow((k - 1) as u32);
    let mut cfg = SimConfig::paper();
    cfg.sensors = n;
    cfg.actuators = 1;
    cfg.placement = ActuatorPlacement::UniformRandom;
    cfg.sensor_placement = SensorPlacement::UniformArea;
    // 500 m × 500 m diagonal is ~707.1 m; 720 m covers every pair.
    cfg.sensor_range = 720.0;
    cfg.actuator_range = 720.0;
    cfg.mobility.max_speed = 0.0;
    cfg.traffic.pattern = TrafficPattern::All2All;
    cfg.traffic.offered_pps = offered_pps;
    // 1 Mb/s: an 8000-bit packet occupies the sender's radio for 8 ms, so
    // per-node forwarding saturates at 125 packets/second. A k-hop path
    // then costs ~8k ms uncongested, leaving most of the 0.6 s QoS budget
    // for queueing — the regime where the routing strategies differ.
    cfg.radio.bitrate_bps = 1_000_000.0;
    cfg.seed = 1;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_sim::{runner, SimDuration};

    #[test]
    fn successor_tables_match_the_id_arithmetic() {
        for (d, k) in [(2u8, 3usize), (3, 4)] {
            let fabric = KautzFabricProtocol::new(d, k);
            for u in 0..fabric.node_count() {
                let id = KautzId::from_index(u, d, k);
                let mut from_table: Vec<usize> = (0..=d)
                    .filter(|&a| a != id.last())
                    .map(|a| fabric.succ_by_digit(u, a))
                    .collect();
                from_table.sort_unstable();
                let mut from_id: Vec<usize> =
                    id.successors().iter().map(|s| s.to_index()).collect();
                from_id.sort_unstable();
                assert_eq!(from_table, from_id, "successors of {u} in K({d}, {k})");
            }
        }
    }

    #[test]
    fn shortest_walk_reaches_every_pair_within_the_diameter() {
        let (d, k) = (3u8, 4usize);
        let fabric = KautzFabricProtocol::new(d, k);
        let n = fabric.node_count();
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let mut at = u;
                let mut hops = 0;
                while at != v {
                    at = fabric.shortest_next(at, v);
                    hops += 1;
                    assert!(hops <= k, "shortest {u} -> {v} exceeded the diameter");
                }
            }
        }
    }

    #[test]
    fn regular_walk_reaches_every_pair_within_the_diameter() {
        let (d, k) = (3u8, 4usize);
        let fabric = KautzFabricProtocol::new(d, k);
        let n = fabric.node_count();
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let (mut at, mut appended, mut hops) = (u, 0u8, 0usize);
                while at != v {
                    let (next, a) = fabric.regular_next(at, v, appended);
                    at = next;
                    appended = a;
                    hops += 1;
                    assert!(hops <= k, "regular {u} -> {v} exceeded the diameter");
                }
            }
        }
    }

    #[test]
    fn fabric_delivers_all_to_all_traffic_end_to_end() {
        for routing in [RoutingStrategy::Shortest, RoutingStrategy::Regular] {
            // Light load: the congestion behaviour has its own benches;
            // this test only checks the walk terminates at the destination.
            let mut cfg = fabric_config(2, 3, 25.0);
            cfg.routing = routing;
            cfg.warmup = SimDuration::from_secs(2);
            cfg.duration = SimDuration::from_secs(10);
            let summary = runner::run(cfg, &mut KautzFabricProtocol::new(2, 3));
            assert!(
                summary.delivery_ratio > 0.95,
                "{routing:?} delivered only {}",
                summary.delivery_ratio
            );
            assert!(summary.hop_p99 <= 7.0, "{routing:?} hop p99 {}", summary.hop_p99);
        }
    }
}
