//! Kautz-overlay \[20\]: the application-layer Kautz baseline.
//!
//! The same cell structure and routing protocol as REFER — "We used REFER's
//! routing protocol in Kautz-overlay to have a fair comparison" (Section
//! IV) — but KIDs are assigned to *random* sensors with no regard for
//! physical position, as an application-layer overlay would. Every overlay
//! arc therefore needs a flooding-discovered multi-hop physical path
//! (Figure 10's dominant construction cost), every overlay hop costs
//! several physical transmissions (Figures 6 and 8's delay), and every
//! physical break triggers a re-flood (Figures 5 and 9's energy).

use crate::flood::{discover, ControlPayload};
use kautz::{KautzId, RouteTable};
use refer::cells::plan_cells;
use refer::embedding::EmbeddingPlan;
use refer::routing::route_choices_indexed;
use rand::seq::SliceRandom;
use std::collections::BTreeMap;
use std::sync::Arc;
use refer_proto::{FailureView, ProtoCtx, SansIo};
use wsan_sim::{
    Ctx, DataId, EnergyAccount, FaultModel, HopReason, Message, NodeId, NodeKind, Point, Protocol,
    RoutingStrategy,
};

/// Kautz-overlay parameters.
#[derive(Debug, Clone)]
pub struct KautzOverlayConfig {
    /// Kautz graph degree per cell.
    pub degree: u8,
    /// Control frame size, bits.
    pub ctrl_bits: u32,
    /// Flood scope (hops) for physical path discovery.
    pub route_scope: usize,
    /// Minimum spacing between re-discovery floods for the same
    /// (node, target) pair; packets arriving inside the window reuse the
    /// freshly discovered route instead of flooding again.
    pub flood_cooldown: wsan_sim::SimDuration,
    /// Maximum physical-path repairs per frame before giving up.
    pub max_repairs: u8,
    /// How long an unacknowledged-frame suspicion lasts under
    /// [`FaultModel::Discovered`] before the peer is given the benefit of
    /// the doubt again.
    pub suspicion_ttl: wsan_sim::SimDuration,
}

impl Default for KautzOverlayConfig {
    fn default() -> Self {
        KautzOverlayConfig {
            degree: 2,
            ctrl_bits: 256,
            route_scope: 16,
            flood_cooldown: wsan_sim::SimDuration::from_secs(1),
            max_repairs: 6,
            suspicion_ttl: wsan_sim::SimDuration::from_secs(8),
        }
    }
}

/// A data frame riding the overlay.
#[derive(Debug, Clone)]
pub struct OvFrame {
    /// The tracked packet.
    pub data: DataId,
    /// Destination cell index.
    pub cell: usize,
    /// Destination KID (a corner actuator).
    pub dest_kid: KautzId,
    /// Conflict forced digit for the next overlay relay.
    pub forced: Option<u8>,
    /// Regular-routing progress ([`RoutingStrategy::Regular`]): digits of
    /// `dest_kid` already appended. Always 0 under the shortest planner.
    pub appended: u8,
    /// Physical route of the current overlay hop.
    pub path: Vec<NodeId>,
    /// Position within `path`.
    pub pos: usize,
    /// Overlay hops taken (loop guard).
    pub hops: u8,
    /// Physical-path repairs performed for this frame.
    pub repairs: u8,
    /// Physical transmissions taken end to end (trace hop count).
    pub tx: u32,
}

/// Kautz-overlay wire messages.
#[derive(Debug, Clone)]
pub enum OvMsg {
    /// Inert control frame.
    Ctrl,
    /// A data frame.
    Data(OvFrame),
}

impl ControlPayload for OvMsg {
    fn inert() -> Self {
        OvMsg::Ctrl
    }
}

/// Observable counters.
#[derive(Debug, Clone, Default)]
pub struct OverlayStats {
    /// Overlay arcs whose physical path was built at construction.
    pub arcs_built: usize,
    /// Physical path re-discoveries during data forwarding.
    pub path_repairs: usize,
    /// Relays that diverted to a non-shortest overlay path.
    pub overlay_alt_switches: usize,
    /// Packets dropped.
    pub drops: usize,
}

const MAX_OVERLAY_HOPS: u8 = 16;

/// One overlay cell: corner actuators plus the KID -> node roster and its
/// dense-index mirror (used by the forwarding hot path so an overlay step
/// costs two array reads instead of a `BTreeMap` clone + walk).
#[derive(Debug)]
struct OvCell {
    corners: Vec<NodeId>,
    roster: BTreeMap<KautzId, NodeId>,
    roster_idx: Vec<Option<NodeId>>,
}

/// The Kautz-overlay protocol.
#[derive(Debug)]
pub struct KautzOverlayProtocol {
    cfg: KautzOverlayConfig,
    plan: EmbeddingPlan,
    /// Dense Theorem 3.8 tables for the cell graph `K(degree, 3)`, shared
    /// with REFER's routing layer.
    route_table: Arc<RouteTable>,
    cells: Vec<OvCell>,
    /// node -> memberships.
    member_cells: BTreeMap<NodeId, Vec<(usize, KautzId)>>,
    /// Physical route per overlay arc (from-node, to-node).
    paths: BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
    /// Pending resumptions after a repair: tag -> (node, frame).
    pending: BTreeMap<u64, (NodeId, OvFrame)>,
    next_pending: u64,
    /// Last flood time per (node, target), for the cooldown.
    last_flood: BTreeMap<(NodeId, NodeId), wsan_sim::SimTime>,
    /// Whether the run uses [`FaultModel::Discovered`].
    discovered: bool,
    /// Failure suspicions learned from unacknowledged frames (`Discovered`
    /// runs only).
    view: FailureView,
    /// Observable counters.
    pub stats: OverlayStats,
}

impl KautzOverlayProtocol {
    /// Creates a Kautz-overlay instance.
    pub fn new(cfg: KautzOverlayConfig) -> Self {
        let plan = EmbeddingPlan::for_degree(cfg.degree);
        let route_table = Arc::new(
            RouteTable::new(cfg.degree, 3).expect("cell graph degree within MAX_DEGREE"),
        );
        let suspicion_ttl = cfg.suspicion_ttl;
        KautzOverlayProtocol {
            cfg,
            plan,
            route_table,
            cells: Vec::new(),
            member_cells: BTreeMap::new(),
            paths: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_pending: 0,
            last_flood: BTreeMap::new(),
            discovered: false,
            view: FailureView::new(suspicion_ttl),
            stats: OverlayStats::default(),
        }
    }

    fn is_member(&self, node: NodeId) -> bool {
        self.member_cells.contains_key(&node)
    }

    /// Whether `a` would pick `b` as a physical next hop: the link oracle
    /// under [`FaultModel::Oracle`], local knowledge only (geometry + the
    /// suspicion view) under [`FaultModel::Discovered`].
    fn usable(&self, ctx: &impl ProtoCtx<OvMsg>, a: NodeId, b: NodeId) -> bool {
        if self.discovered {
            a != b
                && !ctx.self_faulty(a)
                && !self.view.is_suspected(b, ctx.now())
                && ctx.in_range(a, b)
        } else {
            ctx.link_ok(a, b)
        }
    }

    /// Whether `node` is presumed alive in the current mode.
    fn presumed_alive(&self, ctx: &impl ProtoCtx<OvMsg>, node: NodeId) -> bool {
        if self.discovered {
            !self.view.is_suspected(node, ctx.now())
        } else {
            !ctx.is_faulty(node)
        }
    }

    /// Sends a data frame; under `Discovered` it rides the link-layer
    /// ACK/retransmit machinery and failures surface in `on_send_expired`.
    fn send_data(
        &mut self,
        ctx: &mut impl ProtoCtx<OvMsg>,
        from: NodeId,
        to: NodeId,
        size: u32,
        mut frame: OvFrame,
        reason: HopReason,
    ) -> bool {
        frame.tx += 1;
        ctx.trace_hop(frame.data, from, to, reason);
        if self.discovered {
            ctx.send_acked(from, to, size, EnergyAccount::Communication, OvMsg::Data(frame));
            true
        } else {
            ctx.send(from, to, size, EnergyAccount::Communication, OvMsg::Data(frame))
        }
    }

    fn kid_in_cell(&self, node: NodeId, cell: usize) -> Option<KautzId> {
        self.member_cells
            .get(&node)?
            .iter()
            .find(|(c, _)| *c == cell)
            .map(|(_, k)| k.clone())
    }

    fn build_overlay(&mut self, ctx: &mut impl ProtoCtx<OvMsg>) {
        let actuators: Vec<NodeId> = ctx.actuator_ids().to_vec();
        let positions: Vec<Point> = actuators.iter().map(|&a| ctx.position(a)).collect();
        let ids: Vec<u64> = actuators.iter().map(|a| u64::from(a.0)).collect();
        let Some(layout) = plan_cells(&ids, &positions, ctx.config().actuator_range) else {
            return;
        };
        // Random sensor selection per cell: the application layer ignores
        // physical position entirely.
        let mut free: Vec<NodeId> = ctx.sensor_ids().to_vec();
        free.shuffle(ctx.rng());
        let sensor_kids: Vec<KautzId> = self
            .plan
            .assignment_order()
            .into_iter()
            .filter(|k| !self.plan.actuator_kids.contains(k))
            .collect();
        for cell in &layout.cells {
            let corners: Vec<NodeId> =
                cell.corners.iter().map(|&i| actuators[i]).collect();
            let mut roster = BTreeMap::new();
            for (kid, &node) in self.plan.actuator_kids.iter().zip(corners.iter()) {
                roster.insert(kid.clone(), node);
            }
            for kid in &sensor_kids {
                if let Some(node) = free.pop() {
                    roster.insert(kid.clone(), node);
                }
            }
            let idx = self.cells.len();
            let mut roster_idx = vec![None; self.route_table.node_count()];
            for (kid, &node) in &roster {
                self.member_cells.entry(node).or_default().push((idx, kid.clone()));
                if let Some(i) = self.route_table.index_of(kid) {
                    roster_idx[i] = Some(node);
                }
            }
            self.cells.push(OvCell { corners, roster, roster_idx });
        }
        // Every overlay arc needs a flooding-built physical route.
        for cell_idx in 0..self.cells.len() {
            let roster = self.cells[cell_idx].roster.clone();
            for (kid, &from) in &roster {
                for succ in kid.successors() {
                    let Some(&to) = roster.get(&succ) else { continue };
                    if from == to || self.paths.contains_key(&(from, to)) {
                        continue;
                    }
                    let outcome = discover(
                        ctx,
                        from,
                        to,
                        self.cfg.route_scope,
                        self.cfg.ctrl_bits,
                        EnergyAccount::Construction,
                    );
                    if let Some(route) = outcome.route {
                        self.paths.insert((from, to), route);
                        self.stats.arcs_built += 1;
                    }
                }
            }
        }
    }

    /// Overlay-level step at member `node`: pick the next overlay hop with
    /// REFER's routing protocol and start walking its physical path.
    fn overlay_step(&mut self, ctx: &mut impl ProtoCtx<OvMsg>, node: NodeId, mut frame: OvFrame) {
        if frame.hops >= MAX_OVERLAY_HOPS {
            ctx.drop_data(frame.data);
            self.stats.drops += 1;
            return;
        }
        frame.hops += 1;
        let Some(kid) = self.kid_in_cell(node, frame.cell) else {
            ctx.drop_data(frame.data);
            self.stats.drops += 1;
            return;
        };
        if kid == frame.dest_kid {
            if matches!(ctx.kind(node), NodeKind::Actuator) {
                ctx.deliver_data_with_hops(frame.data, node, frame.tx);
            } else {
                ctx.drop_data(frame.data);
            }
            return;
        }
        let (Some(at_idx), Some(dest_idx)) =
            (self.route_table.index_of(&kid), self.route_table.index_of(&frame.dest_kid))
        else {
            ctx.drop_data(frame.data);
            self.stats.drops += 1;
            return;
        };
        // Faber–Streib regular routing: the overlay successor comes from
        // the destination's digit sequence instead of the shortest-path
        // planner; a dead regular successor falls back to the planner with
        // the digit progress restarted.
        let regular_pick = if matches!(ctx.config().routing, RoutingStrategy::Regular) {
            self.route_table.regular_next(at_idx, dest_idx, frame.appended).and_then(
                |(succ_idx, appended)| {
                    self.cells[frame.cell].roster_idx[succ_idx]
                        .filter(|&n| n != node && self.presumed_alive(ctx, n))
                        .map(|n| (n, appended))
                },
            )
        } else {
            None
        };
        let (target, forced, appended) = if let Some((n, appended)) = regular_pick {
            (n, None, appended)
        } else {
            let choices = match route_choices_indexed(
                &self.route_table,
                at_idx,
                dest_idx,
                frame.forced,
                ctx.rng(),
            ) {
                Ok(c) => c,
                Err(_) => {
                    ctx.drop_data(frame.data);
                    self.stats.drops += 1;
                    return;
                }
            };
            let roster_idx = &self.cells[frame.cell].roster_idx;
            let pick = choices.iter().enumerate().find_map(|(i, c)| {
                let n = roster_idx[c.successor as usize]?;
                if n == node || !self.presumed_alive(ctx, n) {
                    return None;
                }
                Some((i, n, c.forced_digit))
            });
            let Some((idx, target, forced)) = pick else {
                ctx.drop_data(frame.data);
                self.stats.drops += 1;
                return;
            };
            if idx > 0 {
                self.stats.overlay_alt_switches += 1;
            }
            (target, forced, 0)
        };
        frame.forced = forced;
        frame.appended = appended;
        match self.paths.get(&(node, target)).cloned() {
            Some(path) if path.first() == Some(&node) => {
                frame.path = path;
                frame.pos = 0;
                self.walk(ctx, node, frame);
            }
            _ => {
                // No stored route (or we are not its head): discover one now.
                self.repair_and_resume(ctx, node, target, frame);
            }
        }
    }

    /// Walks one physical hop of the current overlay path.
    fn walk(&mut self, ctx: &mut impl ProtoCtx<OvMsg>, node: NodeId, mut frame: OvFrame) {
        if frame.path.get(frame.pos).copied() != Some(node) {
            // The path was replaced while this frame was in flight; find
            // ourselves in it, or rebuild toward the overlay target.
            match frame.path.iter().position(|&n| n == node) {
                Some(pos) => frame.pos = pos,
                None => {
                    let Some(&target) = frame.path.last() else {
                        ctx.drop_data(frame.data);
                        self.stats.drops += 1;
                        return;
                    };
                    self.repair_and_resume(ctx, node, target, frame);
                    return;
                }
            }
        }
        if frame.pos + 1 >= frame.path.len() {
            // Arrived at the overlay successor.
            self.overlay_step(ctx, node, frame);
            return;
        }
        let next = frame.path[frame.pos + 1];
        let size = ctx
            .data_size_bits(frame.data)
            .unwrap_or(ctx.config().traffic.packet_bits);
        if self.usable(ctx, node, next) {
            frame.pos += 1;
            self.send_data(ctx, node, next, size, frame, HopReason::PathWalk);
            return;
        }
        // Physical hop broken: re-flood toward the overlay target and
        // resume after the discovery latency (no source retransmission —
        // the overlay is fault-tolerant at the overlay level).
        let target = *frame.path.last().expect("non-empty path");
        self.repair_and_resume(ctx, node, target, frame);
    }

    fn repair_and_resume(
        &mut self,
        ctx: &mut impl ProtoCtx<OvMsg>,
        node: NodeId,
        target: NodeId,
        mut frame: OvFrame,
    ) {
        if node == target {
            self.overlay_step(ctx, node, frame);
            return;
        }
        if frame.repairs >= self.cfg.max_repairs {
            ctx.drop_data(frame.data);
            self.stats.drops += 1;
            return;
        }
        frame.repairs += 1;
        // A previously repaired route for this pair may still be usable.
        if let Some(cached) = self.paths.get(&(node, target)) {
            if cached.len() >= 2 && self.usable(ctx, node, cached[1]) {
                frame.path = cached.clone();
                frame.pos = 0;
                self.walk(ctx, node, frame);
                return;
            }
        }
        // Cooldown: within the window, packets wait for the in-flight
        // repair instead of launching another flood.
        let now = ctx.now();
        if let Some(&last) = self.last_flood.get(&(node, target)) {
            if now.saturating_since(last) < self.cfg.flood_cooldown {
                // A discovery for this pair just ran; retry shortly against
                // its (cached) result instead of flooding again. The wait
                // still consumes a repair: an unbounded budget lets frames
                // cycle wait/expire indefinitely through rotating faults.
                let id = self.next_pending;
                self.next_pending += 1;
                self.pending.insert(id, (node, frame));
                ctx.set_timer(node, wsan_sim::SimDuration::from_millis(20), id);
                return;
            }
        }
        self.last_flood.insert((node, target), now);
        self.stats.path_repairs += 1;
        let outcome = discover(
            ctx,
            node,
            target,
            self.cfg.route_scope,
            self.cfg.ctrl_bits,
            EnergyAccount::Communication,
        );
        match outcome.route {
            Some(route) => {
                self.paths.insert((node, target), route.clone());
                frame.path = route;
                frame.pos = 0;
                let id = self.next_pending;
                self.next_pending += 1;
                self.pending.insert(id, (node, frame));
                ctx.set_timer(node, outcome.latency, id);
            }
            None => {
                ctx.drop_data(frame.data);
                self.stats.drops += 1;
            }
        }
    }
}

impl SansIo for KautzOverlayProtocol {
    type Payload = OvMsg;

    fn name(&self) -> &'static str {
        "Kautz-overlay"
    }

    fn on_init<C: ProtoCtx<OvMsg>>(&mut self, ctx: &mut C) {
        // Byzantine runs use the discovered machinery too: suspicion from
        // ACK expiry instead of the oracle. The overlay has no suspicion
        // gossip, so compromised nodes hurt it through misrouting, silent
        // drops and forged ACKs alone.
        self.discovered = matches!(
            ctx.config().faults.model,
            FaultModel::Discovered | FaultModel::Byzantine
        );
        self.view = FailureView::new(self.cfg.suspicion_ttl);
        self.build_overlay(ctx);
    }

    fn on_ack<C: ProtoCtx<OvMsg>>(&mut self, ctx: &mut C, _at: NodeId, peer: NodeId) {
        if self.discovered {
            self.view.contact(peer, ctx.now());
        }
    }

    fn on_send_expired<C: ProtoCtx<OvMsg>>(
        &mut self,
        ctx: &mut C,
        at: NodeId,
        peer: NodeId,
        payload: OvMsg,
        _attempts: u32,
    ) {
        // Every retry toward `peer` went unacknowledged: suspect it and
        // repair the physical path around it, the overlay's usual recovery.
        if self.discovered && self.view.suspect(peer, ctx.now()) {
            ctx.record_suspicion(peer);
        }
        let OvMsg::Data(frame) = payload else {
            return;
        };
        if ctx.self_faulty(at) {
            ctx.drop_data(frame.data);
            self.stats.drops += 1;
            return;
        }
        match frame.path.last().copied() {
            Some(target) => self.repair_and_resume(ctx, at, target, frame),
            None => {
                ctx.drop_data(frame.data);
                self.stats.drops += 1;
            }
        }
    }

    fn on_app_data<C: ProtoCtx<OvMsg>>(&mut self, ctx: &mut C, src: NodeId, data: DataId) {
        if self.cells.is_empty() {
            ctx.drop_data(data);
            self.stats.drops += 1;
            return;
        }
        let access = if self.is_member(src) {
            Some(src)
        } else {
            self.member_cells
                .keys()
                .copied()
                .filter(|&m| self.usable(ctx, src, m))
                .min_by(|&a, &b| {
                    ctx.distance(src, a).partial_cmp(&ctx.distance(src, b)).expect("finite")
                })
        };
        let Some(access) = access else {
            ctx.drop_data(data);
            self.stats.drops += 1;
            return;
        };
        let (cell, _) = self.member_cells[&access][0].clone();
        let corners = self.cells[cell].corners.clone();
        let nearest = corners
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                ctx.distance(src, a).partial_cmp(&ctx.distance(src, b)).expect("finite")
            })
            .map(|(i, _)| i)
            .expect("three corners");
        let dest_kid = self.plan.actuator_kids[nearest].clone();
        let frame = OvFrame {
            data,
            cell,
            dest_kid,
            forced: None,
            appended: 0,
            path: Vec::new(),
            pos: 0,
            hops: 0,
            repairs: 0,
            tx: 0,
        };
        if access == src {
            self.overlay_step(ctx, src, frame);
            return;
        }
        let size = ctx.data_size_bits(data).unwrap_or(ctx.config().traffic.packet_bits);
        if !self.send_data(ctx, src, access, size, frame, HopReason::Access) {
            ctx.drop_data(data);
            self.stats.drops += 1;
        }
    }

    fn on_message<C: ProtoCtx<OvMsg>>(&mut self, ctx: &mut C, at: NodeId, msg: Message<OvMsg>) {
        if self.discovered {
            self.view.contact(msg.from, ctx.now());
        }
        match msg.payload {
            OvMsg::Ctrl => {}
            OvMsg::Data(frame) => {
                if frame.path.is_empty() {
                    // Access handoff arriving at the entry member.
                    if self.is_member(at) {
                        self.overlay_step(ctx, at, frame);
                    } else {
                        ctx.drop_data(frame.data);
                        self.stats.drops += 1;
                    }
                } else {
                    self.walk(ctx, at, frame);
                }
            }
        }
    }

    fn on_timer<C: ProtoCtx<OvMsg>>(&mut self, ctx: &mut C, at: NodeId, tag: u64) {
        if let Some((node, frame)) = self.pending.remove(&tag) {
            debug_assert_eq!(node, at);
            if ctx.self_faulty(node) {
                ctx.drop_data(frame.data);
                self.stats.drops += 1;
                return;
            }
            self.walk(ctx, node, frame);
        }
    }
}

// Simulator shim: one forwarding line per hook (see the identical adapter
// on `ReferProtocol` for why the orphan rule forces this).
impl Protocol for KautzOverlayProtocol {
    type Payload = OvMsg;

    fn name(&self) -> &'static str {
        SansIo::name(self)
    }

    fn on_init(&mut self, ctx: &mut Ctx<OvMsg>) {
        SansIo::on_init(self, ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<OvMsg>, at: NodeId, msg: Message<OvMsg>) {
        SansIo::on_message(self, ctx, at, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<OvMsg>, at: NodeId, tag: u64) {
        SansIo::on_timer(self, ctx, at, tag);
    }

    fn on_app_data(&mut self, ctx: &mut Ctx<OvMsg>, src: NodeId, data: DataId) {
        SansIo::on_app_data(self, ctx, src, data);
    }

    fn on_ack(&mut self, ctx: &mut Ctx<OvMsg>, at: NodeId, peer: NodeId) {
        SansIo::on_ack(self, ctx, at, peer);
    }

    fn on_send_expired(
        &mut self,
        ctx: &mut Ctx<OvMsg>,
        at: NodeId,
        peer: NodeId,
        payload: OvMsg,
        attempts: u32,
    ) {
        SansIo::on_send_expired(self, ctx, at, peer, payload, attempts);
    }

    fn on_fault_rotation(
        &mut self,
        ctx: &mut Ctx<OvMsg>,
        failed: &[NodeId],
        recovered: &[NodeId],
    ) {
        SansIo::on_fault_rotation(self, ctx, failed, recovered);
    }
}

impl Default for KautzOverlayProtocol {
    fn default() -> Self {
        Self::new(KautzOverlayConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_sim::{runner, SimConfig};

    fn smoke(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::smoke();
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn overlay_builds_arcs_with_expensive_floods() {
        let (summary, p) = runner::run_owned(smoke(1), KautzOverlayProtocol::default());
        assert!(p.stats.arcs_built > 40, "most arcs get physical routes: {:?}", p.stats);
        assert!(
            summary.energy_construction_j > 10_000.0,
            "per-arc floods dominate construction: {}",
            summary.energy_construction_j
        );
    }

    #[test]
    fn delivers_some_data_despite_long_paths() {
        let (summary, p) = runner::run_owned(smoke(2), KautzOverlayProtocol::default());
        assert!(summary.delivery_ratio > 0.1, "{summary:?} {:?}", p.stats);
    }

    #[test]
    fn repairs_follow_mobility() {
        let mut cfg = smoke(3);
        cfg.mobility.max_speed = 4.0;
        let (_, p) = runner::run_owned(cfg, KautzOverlayProtocol::default());
        assert!(p.stats.path_repairs > 0, "{:?}", p.stats);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = runner::run_owned(smoke(4), KautzOverlayProtocol::default());
        let (b, _) = runner::run_owned(smoke(4), KautzOverlayProtocol::default());
        assert_eq!(a, b);
    }
}
