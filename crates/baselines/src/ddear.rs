//! D-DEAR \[8\]: the cluster/mesh-based WSAN baseline.
//!
//! Sensors exchange 2-hop hellos and the highest-energy sensor of each
//! 2-hop neighborhood becomes a cluster head; members reach their head
//! directly or through one gateway. Each head maintains a flooding-
//! discovered multi-hop path to its closest actuator. Only the heads'
//! paths lengthen with network size (Figure 8's moderate delay growth) and
//! only heads rebuild paths on failure — cheaper than DaTree's per-sensor
//! recovery, but still broadcast-based (Figures 5 and 9).

use crate::flood::{discover, ControlPayload};
use std::collections::{BTreeMap, BTreeSet};
use wsan_sim::{
    Ctx, DataId, EnergyAccount, HopReason, Message, NodeId, NodeKind, Protocol, SimDuration,
};

/// D-DEAR parameters.
#[derive(Debug, Clone)]
pub struct DdearConfig {
    /// Control frame size, bits.
    pub ctrl_bits: u32,
    /// Maximum source retransmissions per packet.
    pub max_retx: u8,
    /// Flood scope (hops) for head-to-actuator route discovery.
    pub route_scope: usize,
    /// Minimum spacing between path rebuild floods per head; packets
    /// arriving inside the window wait for the in-flight rebuild.
    pub rebuild_cooldown: SimDuration,
}

impl Default for DdearConfig {
    fn default() -> Self {
        DdearConfig {
            ctrl_bits: 256,
            max_retx: 2,
            route_scope: 16,
            rebuild_cooldown: SimDuration::from_secs(1),
        }
    }
}

/// D-DEAR wire messages.
#[derive(Debug, Clone)]
pub enum DdearMsg {
    /// Inert control frame (hellos, route floods).
    Ctrl,
    /// A data frame: member -> (gateway) -> head -> path -> actuator.
    Data {
        /// The tracked packet.
        data: DataId,
        /// The cluster head responsible for this packet.
        head: NodeId,
        /// Position within the head's actuator path once on it
        /// (`None` before reaching the head).
        path_pos: Option<usize>,
        /// Source retransmission attempt counter.
        attempts: u8,
        /// Transmissions taken so far (trace hop count).
        hops: u32,
    },
}

impl ControlPayload for DdearMsg {
    fn inert() -> Self {
        DdearMsg::Ctrl
    }
}

/// Observable counters.
#[derive(Debug, Clone, Default)]
pub struct DdearStats {
    /// Elected cluster heads.
    pub heads: usize,
    /// Head path rebuilds.
    pub path_repairs: usize,
    /// Member head re-selections.
    pub head_reselects: usize,
    /// Source retransmissions scheduled.
    pub retransmissions: usize,
    /// Packets dropped (no head / no route / retx exhausted).
    pub drops: usize,
}

/// The D-DEAR protocol.
#[derive(Debug)]
pub struct DdearProtocol {
    cfg: DdearConfig,
    heads: BTreeSet<NodeId>,
    /// Member -> (its head, optional gateway toward it).
    head_of: BTreeMap<NodeId, (NodeId, Option<NodeId>)>,
    /// Head -> path to its actuator (head first, actuator last).
    head_path: BTreeMap<NodeId, Vec<NodeId>>,
    /// Pending retransmissions: tag -> (node to resume at, data, attempts,
    /// transmissions already taken).
    pending: BTreeMap<u64, (NodeId, DataId, u8, u32)>,
    next_pending: u64,
    /// Last rebuild time per head, for the cooldown.
    last_rebuild: BTreeMap<NodeId, wsan_sim::SimTime>,
    /// Observable counters.
    pub stats: DdearStats,
}

impl DdearProtocol {
    /// Creates a D-DEAR instance.
    pub fn new(cfg: DdearConfig) -> Self {
        DdearProtocol {
            cfg,
            heads: BTreeSet::new(),
            head_of: BTreeMap::new(),
            head_path: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_pending: 0,
            last_rebuild: BTreeMap::new(),
            stats: DdearStats::default(),
        }
    }

    /// The elected cluster heads.
    pub fn heads(&self) -> &BTreeSet<NodeId> {
        &self.heads
    }

    fn build_clusters(&mut self, ctx: &mut Ctx<DdearMsg>) {
        // Two hello broadcasts per sensor (own hello + 2-hop forwarding).
        let sensors: Vec<NodeId> = ctx.sensor_ids().to_vec();
        for &s in &sensors {
            ctx.broadcast(s, self.cfg.ctrl_bits, EnergyAccount::Construction, DdearMsg::Ctrl);
            ctx.broadcast(s, self.cfg.ctrl_bits, EnergyAccount::Construction, DdearMsg::Ctrl);
        }
        // Nothing moves or fails during construction, so every node's
        // neighbor set is computed exactly once for the whole placement
        // round; the greedy election and the membership pass below both
        // walk this table instead of re-querying per iteration.
        let mut table: Vec<Vec<NodeId>> = vec![Vec::new(); ctx.node_count()];
        for id in ctx.node_ids() {
            ctx.neighbors_into(id, &mut table[id.index()]);
        }
        // Greedy election: highest-battery first, skip anything already
        // within two hops of a head.
        let mut order = sensors.clone();
        order.sort_by(|&a, &b| {
            ctx.battery(b)
                .partial_cmp(&ctx.battery(a))
                .expect("finite")
                .then(a.cmp(&b))
        });
        // 1-hop domination: every sensor ends up adjacent to a head, so the
        // member leg is a single transmission (clusters are "physically
        // close sensors"); the 2-hop hellos above pay for the election.
        let mut covered: BTreeSet<NodeId> = BTreeSet::new();
        for &s in &order {
            if covered.contains(&s) {
                continue;
            }
            self.heads.insert(s);
            covered.insert(s);
            covered.extend(table[s.index()].iter().copied());
        }
        self.stats.heads = self.heads.len();
        // Membership: nearest head within 2 hops (gateway = common
        // neighbor when not adjacent).
        for &s in &sensors {
            if self.heads.contains(&s) {
                continue;
            }
            self.attach_member_using(ctx, s, Some(&table));
        }
        // Heads discover their actuator paths.
        let heads: Vec<NodeId> = self.heads.iter().copied().collect();
        for h in heads {
            self.rebuild_head_path(ctx, h, EnergyAccount::Construction);
        }
    }

    /// Runtime (re-)attachment: the topology may have changed since
    /// construction, so neighborhoods are queried fresh.
    fn attach_member(&mut self, ctx: &Ctx<DdearMsg>, s: NodeId) -> Option<(NodeId, Option<NodeId>)> {
        self.attach_member_using(ctx, s, None)
    }

    /// Attaches `s` to its nearest head within two hops. With `table`
    /// (construction), neighbor sets come from the per-round precomputed
    /// lists; without it (runtime re-attachment), they are queried live.
    /// Neighbor lists are in ascending `NodeId` order either way, so both
    /// paths scan gateways identically.
    fn attach_member_using(
        &mut self,
        ctx: &Ctx<DdearMsg>,
        s: NodeId,
        table: Option<&[Vec<NodeId>]>,
    ) -> Option<(NodeId, Option<NodeId>)> {
        let fresh;
        let neighbors: &[NodeId] = match table {
            Some(t) => &t[s.index()],
            None => {
                fresh = ctx.neighbors(s);
                &fresh
            }
        };
        // Direct head?
        let direct = neighbors
            .iter()
            .copied()
            .filter(|n| self.heads.contains(n))
            .min_by(|&a, &b| {
                ctx.distance(s, a).partial_cmp(&ctx.distance(s, b)).expect("finite")
            });
        if let Some(h) = direct {
            self.head_of.insert(s, (h, None));
            return Some((h, None));
        }
        // Head two hops away through a gateway.
        let mut fresh_g = Vec::new();
        for g in neighbors {
            let g_neighbors: &[NodeId] = match table {
                Some(t) => &t[g.index()],
                None => {
                    ctx.neighbors_into(*g, &mut fresh_g);
                    &fresh_g
                }
            };
            let via = g_neighbors
                .iter()
                .copied()
                .filter(|n| self.heads.contains(n))
                .min_by(|&a, &b| {
                    ctx.distance(s, a).partial_cmp(&ctx.distance(s, b)).expect("finite")
                });
            if let Some(h) = via {
                self.head_of.insert(s, (h, Some(*g)));
                return Some((h, Some(*g)));
            }
        }
        None
    }

    fn rebuild_head_path(
        &mut self,
        ctx: &mut Ctx<DdearMsg>,
        head: NodeId,
        account: EnergyAccount,
    ) -> Option<SimDuration> {
        // Cooldown: a rebuild flood just happened (or is conceptually in
        // flight); let callers retry against the refreshed path instead of
        // flooding per packet.
        let now = ctx.now();
        if matches!(account, EnergyAccount::Communication) {
            if let Some(&last) = self.last_rebuild.get(&head) {
                if now.saturating_since(last) < self.cfg.rebuild_cooldown {
                    // A rebuild just ran; retry shortly against its result.
                    return Some(SimDuration::from_millis(20));
                }
            }
            self.last_rebuild.insert(head, now);
        }
        let actuator = ctx
            .actuator_ids()
            .iter()
            .copied()
            .min_by(|&a, &b| {
                ctx.distance(head, a).partial_cmp(&ctx.distance(head, b)).expect("finite")
            })?;
        let outcome =
            discover(ctx, head, actuator, self.cfg.route_scope, self.cfg.ctrl_bits, account);
        match outcome.route {
            Some(route) => {
                self.head_path.insert(head, route);
                Some(outcome.latency)
            }
            None => {
                self.head_path.remove(&head);
                None
            }
        }
    }

    /// Forwards a data frame from `node`; `hops` counts the transmissions
    /// already taken.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        &mut self,
        ctx: &mut Ctx<DdearMsg>,
        node: NodeId,
        data: DataId,
        head: NodeId,
        path_pos: Option<usize>,
        attempts: u8,
        hops: u32,
    ) {
        if matches!(ctx.kind(node), NodeKind::Actuator) {
            ctx.deliver_data_with_hops(data, node, hops);
            return;
        }
        let size = ctx.data_size_bits(data).unwrap_or(ctx.config().traffic.packet_bits);
        let frame =
            |head, path_pos, attempts| DdearMsg::Data { data, head, path_pos, attempts, hops: hops + 1 };

        if node == head {
            // On the head: walk its actuator path.
            let next = self
                .head_path
                .get(&head)
                .and_then(|p| p.get(1))
                .copied()
                .filter(|&n| ctx.link_ok(node, n));
            if let Some(next) = next {
                ctx.trace_hop(data, node, next, HopReason::PathWalk);
                ctx.send(node, next, size, EnergyAccount::Communication, frame(head, Some(1), attempts));
                return;
            }
            // Path broken at the head: rebuild and retransmit from here.
            self.stats.path_repairs += 1;
            match self.rebuild_head_path(ctx, head, EnergyAccount::Communication) {
                Some(latency) => self.schedule_retx(ctx, node, data, attempts, latency, hops),
                None => {
                    ctx.drop_data(data);
                    self.stats.drops += 1;
                }
            }
            return;
        }
        if let Some(_pos) = path_pos {
            // On the head's path. The path may have been rebuilt while this
            // frame was in flight, so locate ourselves in the current one.
            let path = self.head_path.get(&head).cloned().unwrap_or_default();
            let pos = path.iter().position(|&n| n == node).unwrap_or(usize::MAX);
            let next = path
                .get(pos.wrapping_add(1))
                .copied()
                .filter(|&n| ctx.link_ok(node, n));
            if let Some(next) = next {
                ctx.trace_hop(data, node, next, HopReason::PathWalk);
                ctx.send(
                    node,
                    next,
                    size,
                    EnergyAccount::Communication,
                    frame(head, Some(pos.wrapping_add(1)), attempts),
                );
                return;
            }
            // Broken mid-path: the head repairs; the source retransmits.
            self.stats.path_repairs += 1;
            let latency = self.rebuild_head_path(ctx, head, EnergyAccount::Communication);
            match latency {
                Some(latency) => {
                    let Some(src) = ctx.data_origin(data) else {
                        ctx.drop_data(data);
                        return;
                    };
                    self.schedule_retx(ctx, src, data, attempts, latency, 0);
                }
                None => {
                    ctx.drop_data(data);
                    self.stats.drops += 1;
                }
            }
            return;
        }
        // Member or gateway leg.
        let (my_head, gateway) = match self.head_of.get(&node).copied() {
            Some(v) => v,
            None => match self.attach_member(ctx, node) {
                Some(v) => {
                    self.stats.head_reselects += 1;
                    v
                }
                None => {
                    ctx.drop_data(data);
                    self.stats.drops += 1;
                    return;
                }
            },
        };
        let next = match gateway {
            Some(g) if g != node => g,
            _ => my_head,
        };
        let next = if node == next { my_head } else { next };
        if ctx.link_ok(node, next) {
            let pos = None;
            ctx.trace_hop(data, node, next, HopReason::Gateway);
            ctx.send(node, next, size, EnergyAccount::Communication, frame(my_head, pos, attempts));
            return;
        }
        // Stale membership: one solicitation broadcast, re-attach, retry.
        ctx.broadcast(node, self.cfg.ctrl_bits, EnergyAccount::Communication, DdearMsg::Ctrl);
        self.head_of.remove(&node);
        match self.attach_member(ctx, node) {
            Some((h, g)) => {
                self.stats.head_reselects += 1;
                let next = g.unwrap_or(h);
                if ctx.link_ok(node, next) {
                    ctx.trace_hop(data, node, next, HopReason::Recovery);
                    ctx.send(node, next, size, EnergyAccount::Communication, frame(h, None, attempts));
                } else {
                    ctx.drop_data(data);
                    self.stats.drops += 1;
                }
            }
            None => {
                ctx.drop_data(data);
                self.stats.drops += 1;
            }
        }
    }

    fn schedule_retx(
        &mut self,
        ctx: &mut Ctx<DdearMsg>,
        at: NodeId,
        data: DataId,
        attempts: u8,
        delay: SimDuration,
        hops: u32,
    ) {
        if attempts >= self.cfg.max_retx {
            ctx.drop_data(data);
            self.stats.drops += 1;
            return;
        }
        let id = self.next_pending;
        self.next_pending += 1;
        self.pending.insert(id, (at, data, attempts + 1, hops));
        self.stats.retransmissions += 1;
        ctx.set_timer(at, delay, id);
    }
}

impl Protocol for DdearProtocol {
    type Payload = DdearMsg;

    fn name(&self) -> &'static str {
        "D-DEAR"
    }

    fn on_init(&mut self, ctx: &mut Ctx<DdearMsg>) {
        self.build_clusters(ctx);
    }

    fn on_app_data(&mut self, ctx: &mut Ctx<DdearMsg>, src: NodeId, data: DataId) {
        let head = if self.heads.contains(&src) {
            src
        } else {
            match self.head_of.get(&src).copied().or_else(|| {
                self.attach_member(ctx, src)
            }) {
                Some((h, _)) => h,
                None => {
                    ctx.drop_data(data);
                    self.stats.drops += 1;
                    return;
                }
            }
        };
        self.forward(ctx, src, data, head, None, 0, 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<DdearMsg>, at: NodeId, msg: Message<DdearMsg>) {
        match msg.payload {
            DdearMsg::Ctrl => {}
            DdearMsg::Data { data, head, path_pos, attempts, hops } => {
                // Reaching the head switches the frame onto the path leg.
                let path_pos = if at == head { None } else { path_pos };
                self.forward(ctx, at, data, head, path_pos, attempts, hops);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<DdearMsg>, at: NodeId, tag: u64) {
        if let Some((node, data, attempts, hops)) = self.pending.remove(&tag) {
            debug_assert_eq!(node, at);
            if ctx.is_faulty(node) {
                ctx.drop_data(data);
                return;
            }
            let head = if self.heads.contains(&node) {
                node
            } else {
                match self.head_of.get(&node).copied() {
                    Some((h, _)) => h,
                    None => {
                        ctx.drop_data(data);
                        return;
                    }
                }
            };
            self.forward(ctx, node, data, head, None, attempts, hops);
        }
    }
}

impl Default for DdearProtocol {
    fn default() -> Self {
        Self::new(DdearConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_sim::{runner, SimConfig};

    fn smoke(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::smoke();
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn elects_a_sparse_set_of_heads() {
        let (_, p) = runner::run_owned(smoke(1), DdearProtocol::default());
        assert!(p.stats.heads > 0);
        assert!(
            p.stats.heads < 60,
            "2-hop domination keeps heads sparse: {}",
            p.stats.heads
        );
    }

    #[test]
    fn delivers_data() {
        let (summary, _) = runner::run_owned(smoke(2), DdearProtocol::default());
        assert!(summary.delivery_ratio > 0.4, "{summary:?}");
    }

    #[test]
    fn repairs_paths_under_faults() {
        let mut cfg = smoke(3);
        cfg.faults.count = 12;
        let (_, p) = runner::run_owned(cfg, DdearProtocol::default());
        assert!(
            p.stats.path_repairs + p.stats.head_reselects > 0,
            "faults must trigger recovery: {:?}",
            p.stats
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = runner::run_owned(smoke(4), DdearProtocol::default());
        let (b, _) = runner::run_owned(smoke(4), DdearProtocol::default());
        assert_eq!(a, b);
    }
}
