//! Charged flooding route discovery — the "topological routing" component
//! shared by the baseline systems (\[35\] in the paper).
//!
//! The baselines recover from failures by broadcasting route requests
//! (DaTree re-attaches to its root, D-DEAR heads rebuild actuator paths,
//! Kautz-overlay re-establishes the multi-hop path between two overlay
//! neighbors). We model a discovery as:
//!
//! * a breadth-first search over the *current* connectivity graph to find
//!   the route the flood would discover;
//! * one real broadcast frame per node the flood expands (so the energy
//!   and the channel congestion of the request wave are fully paid), plus
//!   one unicast frame per hop of the reply path;
//! * a latency estimate (request depth + reply length, at control-frame
//!   service time) that callers use to delay the retransmission.
//!
//! The *control flow* (who learns the route) is applied directly to
//! protocol state once the frames are charged, the same simulation style
//! used for REFER's construction.

use refer_proto::ProtoCtx;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wsan_sim::{EnergyAccount, NodeId, SimDuration};

/// Payloads that can represent an inert control frame (delivered, charged,
/// but carrying no protocol action).
pub trait ControlPayload: Clone + std::fmt::Debug {
    /// An inert control frame.
    fn inert() -> Self;
}

/// The result of one flooding discovery.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// The discovered route, inclusive of both endpoints; `None` when the
    /// destination is unreachable in the current topology.
    pub route: Option<Vec<NodeId>>,
    /// Number of request broadcasts charged.
    pub broadcasts: usize,
    /// Estimated request+reply latency to account before the route is
    /// usable.
    pub latency: SimDuration,
}

/// Floods a route request from `from` toward `to`, expanding at most
/// `scope` hops, charging every frame to `account`.
///
/// The BFS expands alive nodes only and uses each expander's own
/// transmission range (directional links). `ctrl_bits` sizes the control
/// frames.
pub fn discover<P: ControlPayload>(
    ctx: &mut impl ProtoCtx<P>,
    from: NodeId,
    to: NodeId,
    scope: usize,
    ctrl_bits: u32,
    account: EnergyAccount,
) -> Discovery {
    let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut depth: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    let mut queue = VecDeque::new();
    // One neighbor buffer for the whole BFS: each expansion refills it
    // instead of allocating a fresh Vec per hop.
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut broadcasts = 0usize;
    seen.insert(from);
    depth.insert(from, 0);
    queue.push_back(from);
    let mut found = false;
    while let Some(cur) = queue.pop_front() {
        let d = depth[&cur];
        if d >= scope {
            continue;
        }
        // The expansion broadcast: real frame, real energy, real congestion.
        broadcasts += 1;
        ctx.broadcast(cur, ctrl_bits, account, P::inert());
        if found {
            // The wave keeps spreading a little after the target is hit;
            // one extra ring is enough to model that cost.
            continue;
        }
        // The receivers of that charged broadcast — the medium's outcome,
        // not an oracle lookup (see [`Ctx::physical_neighbors`]).
        ctx.physical_neighbors_into(cur, &mut frontier);
        for &n in &frontier {
            if seen.insert(n) {
                parent.insert(n, cur);
                depth.insert(n, d + 1);
                if n == to {
                    found = true;
                }
                queue.push_back(n);
            }
        }
        if found {
            // Stop enqueueing new rings beyond the current frontier.
            queue.retain(|q| depth[q] <= d + 1);
        }
    }
    if !seen.contains(&to) {
        let latency = per_hop_latency(ctx, ctrl_bits).mul(scope as u64)
            + contention_latency(ctx, ctrl_bits, broadcasts);
        return Discovery { route: None, broadcasts, latency };
    }
    // Reconstruct and charge the reply path (unicast back along parents).
    let mut route = vec![to];
    let mut at = to;
    while let Some(&p) = parent.get(&at) {
        route.push(p);
        at = p;
    }
    route.reverse();
    for w in route.windows(2).rev() {
        // Reply travels destination -> source.
        ctx.send(w[1], w[0], ctrl_bits, account, P::inert());
    }
    let hops = route.len() as u64; // request depth + reply ≈ 2 * len
    let latency = per_hop_latency(ctx, ctrl_bits).mul(2 * hops)
        + contention_latency(ctx, ctrl_bits, broadcasts);
    Discovery { route: Some(route), broadcasts, latency }
}

/// Mean per-hop medium-acquisition time of a request/reply frame under
/// load: DIFS, contention window backoff and retry attempts. Dominates the
/// serialization time for small control frames.
const DISCOVERY_BACKOFF: SimDuration = SimDuration::from_millis(25);

fn per_hop_latency<P: Clone + std::fmt::Debug>(
    ctx: &impl ProtoCtx<P>,
    ctrl_bits: u32,
) -> SimDuration {
    ctx.service_time(ctrl_bits) + DISCOVERY_BACKOFF
}

/// The request wave contends for the shared medium across the flooded
/// region; with a spatial-reuse factor of ~4, its completion time scales
/// with the number of broadcasts it took.
fn contention_latency<P: Clone + std::fmt::Debug>(
    ctx: &impl ProtoCtx<P>,
    ctrl_bits: u32,
    broadcasts: usize,
) -> SimDuration {
    ctx.service_time(ctrl_bits).mul(broadcasts as u64 / 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_sim::{runner, Ctx, DataId, Message, Protocol, SimConfig, SimDuration};

    #[derive(Debug, Clone)]
    struct Inert;
    impl ControlPayload for Inert {
        fn inert() -> Self {
            Inert
        }
    }

    /// Runs one discovery inside a live simulation and exposes the result.
    struct DiscoverOnce {
        outcome: Option<Discovery>,
    }
    impl Protocol for DiscoverOnce {
        type Payload = Inert;
        fn name(&self) -> &'static str {
            "DiscoverOnce"
        }
        fn on_init(&mut self, ctx: &mut Ctx<Inert>) {
            let from = ctx.sensor_ids()[0];
            let to = ctx.actuator_ids()[0];
            self.outcome = Some(discover(ctx, from, to, 12, 256, EnergyAccount::Construction));
        }
        fn on_message(&mut self, _: &mut Ctx<Inert>, _: NodeId, _: Message<Inert>) {}
        fn on_timer(&mut self, _: &mut Ctx<Inert>, _: NodeId, _: u64) {}
        fn on_app_data(&mut self, ctx: &mut Ctx<Inert>, _: NodeId, data: DataId) {
            ctx.drop_data(data);
        }
    }

    #[test]
    fn discovery_finds_a_connected_route_and_charges_energy() {
        let mut cfg = SimConfig::smoke();
        cfg.duration = SimDuration::from_secs(1);
        cfg.warmup = SimDuration::from_secs(1);
        let (summary, p) = runner::run_owned(cfg, DiscoverOnce { outcome: None });
        let d = p.outcome.expect("ran");
        let route = d.route.expect("dense smoke deployment is connected");
        assert!(route.len() >= 2);
        assert!(d.broadcasts >= route.len() - 1, "at least the route itself expanded");
        assert!(d.latency > SimDuration::ZERO);
        assert!(summary.energy_construction_j > 0.0, "flood frames were charged");
    }

    /// Unreachable destination: scope-limited flood gives up.
    struct DiscoverUnreachable {
        outcome: Option<Discovery>,
    }
    impl Protocol for DiscoverUnreachable {
        type Payload = Inert;
        fn name(&self) -> &'static str {
            "DiscoverUnreachable"
        }
        fn on_init(&mut self, ctx: &mut Ctx<Inert>) {
            let from = ctx.sensor_ids()[0];
            let to = ctx.actuator_ids()[0];
            // Scope 0: cannot expand anywhere.
            self.outcome = Some(discover(ctx, from, to, 0, 256, EnergyAccount::Communication));
        }
        fn on_message(&mut self, _: &mut Ctx<Inert>, _: NodeId, _: Message<Inert>) {}
        fn on_timer(&mut self, _: &mut Ctx<Inert>, _: NodeId, _: u64) {}
        fn on_app_data(&mut self, ctx: &mut Ctx<Inert>, _: NodeId, data: DataId) {
            ctx.drop_data(data);
        }
    }

    #[test]
    fn zero_scope_discovery_fails() {
        let mut cfg = SimConfig::smoke();
        cfg.duration = SimDuration::from_secs(1);
        cfg.warmup = SimDuration::from_secs(1);
        let (_, p) = runner::run_owned(cfg, DiscoverUnreachable { outcome: None });
        let d = p.outcome.expect("ran");
        assert!(d.route.is_none());
    }
}
