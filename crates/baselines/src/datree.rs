//! DaTree \[2\]: the tree-based WSAN baseline.
//!
//! One tree per actuator: at construction each actuator broadcasts a
//! tree-build wave and every sensor adopts the forwarder of the first wave
//! it hears as its parent (the cheapest construction of all four systems —
//! Figure 10). Data climbs parent pointers to the root. When a sensor's
//! link to its parent breaks it broadcasts toward the root to re-attach,
//! and the *source* retransmits the packet (Section IV) — the recovery
//! behaviour that costs DaTree its throughput and energy under mobility
//! and faults (Figures 4-7).

use crate::flood::{discover, ControlPayload};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wsan_sim::{
    Ctx, DataId, EnergyAccount, HopReason, Message, NodeId, NodeKind, Protocol, SimDuration,
};

/// DaTree parameters.
#[derive(Debug, Clone)]
pub struct DaTreeConfig {
    /// Control frame size, bits.
    pub ctrl_bits: u32,
    /// Maximum source retransmissions per packet.
    pub max_retx: u8,
    /// Flood scope (hops) for repair broadcasts toward the root.
    pub repair_scope: usize,
}

impl Default for DaTreeConfig {
    fn default() -> Self {
        DaTreeConfig { ctrl_bits: 256, max_retx: 2, repair_scope: 16 }
    }
}

/// DaTree wire messages.
#[derive(Debug, Clone)]
pub enum DaTreeMsg {
    /// Inert control frame (tree-build wave, repair floods).
    Ctrl,
    /// A data frame climbing the tree.
    Data {
        /// The tracked packet.
        data: DataId,
        /// Source retransmission attempt counter.
        attempts: u8,
        /// Transmissions taken so far (trace hop count).
        hops: u32,
    },
}

impl ControlPayload for DaTreeMsg {
    fn inert() -> Self {
        DaTreeMsg::Ctrl
    }
}

/// Observable counters.
#[derive(Debug, Clone, Default)]
pub struct DaTreeStats {
    /// Parent re-attachments performed.
    pub repairs: usize,
    /// Source retransmissions scheduled.
    pub retransmissions: usize,
    /// Packets dropped after exhausting retransmissions.
    pub drop_exhausted: usize,
    /// Packets dropped because no repair route existed.
    pub drop_unreachable: usize,
}

/// The DaTree protocol.
#[derive(Debug)]
pub struct DaTreeProtocol {
    cfg: DaTreeConfig,
    /// Sensor -> current parent.
    parent: BTreeMap<NodeId, NodeId>,
    /// Sensor -> tree root (actuator).
    root_of: BTreeMap<NodeId, NodeId>,
    /// Pending source retransmissions: tag arg -> (source, data, attempts).
    pending: BTreeMap<u64, (NodeId, DataId, u8)>,
    next_pending: u64,
    /// Observable counters.
    pub stats: DaTreeStats,
}

impl DaTreeProtocol {
    /// Creates a DaTree instance.
    pub fn new(cfg: DaTreeConfig) -> Self {
        DaTreeProtocol {
            cfg,
            parent: BTreeMap::new(),
            root_of: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_pending: 0,
            stats: DaTreeStats::default(),
        }
    }

    /// The current parent of `sensor`, if attached.
    pub fn parent_of(&self, sensor: NodeId) -> Option<NodeId> {
        self.parent.get(&sensor).copied()
    }

    /// Multi-source BFS tree build: every sensor joins the first wave that
    /// reaches it; one construction broadcast per expanding node.
    fn build_trees(&mut self, ctx: &mut Ctx<DaTreeMsg>) {
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for &a in ctx.actuator_ids() {
            seen.insert(a);
            self.root_of.insert(a, a);
            queue.push_back(a);
        }
        // One scratch buffer for the whole wave: the expansion refills it
        // per node instead of allocating per hop.
        let mut frontier: Vec<NodeId> = Vec::new();
        while let Some(cur) = queue.pop_front() {
            ctx.broadcast(cur, self.cfg.ctrl_bits, EnergyAccount::Construction, DaTreeMsg::Ctrl);
            let root = self.root_of[&cur];
            ctx.neighbors_into(cur, &mut frontier);
            for &n in &frontier {
                // A node only adopts a parent it can actually transmit to:
                // hearing an actuator's long-range broadcast does not give a
                // short-range sensor an uplink (asymmetric ranges).
                if ctx.distance(n, cur) > ctx.range(n) {
                    continue;
                }
                if seen.insert(n) {
                    self.parent.insert(n, cur);
                    self.root_of.insert(n, root);
                    queue.push_back(n);
                }
            }
        }
    }

    /// Forwards `data` one hop up the tree from `node`, repairing and
    /// triggering source retransmission on failure; `hops` counts the
    /// transmissions already taken.
    fn climb(&mut self, ctx: &mut Ctx<DaTreeMsg>, node: NodeId, data: DataId, attempts: u8, hops: u32) {
        if matches!(ctx.kind(node), NodeKind::Actuator) {
            ctx.deliver_data_with_hops(data, node, hops);
            return;
        }
        let size = ctx.data_size_bits(data).unwrap_or(ctx.config().traffic.packet_bits);
        if let Some(p) = self.parent.get(&node).copied() {
            if ctx.link_ok(node, p) {
                ctx.trace_hop(data, node, p, HopReason::TreeParent);
                if ctx.send(node, p, size, EnergyAccount::Communication, DaTreeMsg::Data {
                    data,
                    attempts,
                    hops: hops + 1,
                }) {
                    return;
                }
            }
        }
        // Parent link broken: broadcast toward the root for a new parent,
        // then have the source retransmit.
        let root = self
            .root_of
            .get(&node)
            .copied()
            .unwrap_or_else(|| nearest_actuator(ctx, node));
        let outcome = discover(
            ctx,
            node,
            root,
            self.cfg.repair_scope,
            self.cfg.ctrl_bits,
            EnergyAccount::Communication,
        );
        match outcome.route {
            Some(route) if route.len() >= 2 => {
                self.parent.insert(node, route[1]);
                self.root_of.insert(node, root);
                self.stats.repairs += 1;
                self.schedule_retx(ctx, data, attempts, outcome.latency);
            }
            _ => {
                ctx.drop_data(data);
                self.stats.drop_unreachable += 1;
            }
        }
    }

    fn schedule_retx(
        &mut self,
        ctx: &mut Ctx<DaTreeMsg>,
        data: DataId,
        attempts: u8,
        delay: SimDuration,
    ) {
        if attempts >= self.cfg.max_retx {
            ctx.drop_data(data);
            self.stats.drop_exhausted += 1;
            return;
        }
        let Some(src) = ctx.data_origin(data) else {
            ctx.drop_data(data);
            return;
        };
        let id = self.next_pending;
        self.next_pending += 1;
        self.pending.insert(id, (src, data, attempts + 1));
        self.stats.retransmissions += 1;
        ctx.set_timer(src, delay, id);
    }
}

fn nearest_actuator<P>(ctx: &Ctx<P>, node: NodeId) -> NodeId {
    ctx.actuator_ids()
        .iter()
        .copied()
        .min_by(|&a, &b| {
            ctx.distance(node, a).partial_cmp(&ctx.distance(node, b)).expect("finite")
        })
        .expect("actuators exist")
}

impl Protocol for DaTreeProtocol {
    type Payload = DaTreeMsg;

    fn name(&self) -> &'static str {
        "DaTree"
    }

    fn on_init(&mut self, ctx: &mut Ctx<DaTreeMsg>) {
        self.build_trees(ctx);
    }

    fn on_app_data(&mut self, ctx: &mut Ctx<DaTreeMsg>, src: NodeId, data: DataId) {
        self.climb(ctx, src, data, 0, 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<DaTreeMsg>, at: NodeId, msg: Message<DaTreeMsg>) {
        match msg.payload {
            DaTreeMsg::Ctrl => {}
            DaTreeMsg::Data { data, attempts, hops } => self.climb(ctx, at, data, attempts, hops),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<DaTreeMsg>, at: NodeId, tag: u64) {
        if let Some((src, data, attempts)) = self.pending.remove(&tag) {
            debug_assert_eq!(src, at);
            if ctx.is_faulty(src) {
                ctx.drop_data(data);
                return;
            }
            // Source retransmission: the packet restarts its journey, so
            // the hop count restarts with it.
            self.climb(ctx, src, data, attempts, 0);
        }
    }
}

impl Default for DaTreeProtocol {
    fn default() -> Self {
        Self::new(DaTreeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_sim::{runner, SimConfig};

    fn smoke(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::smoke();
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn trees_cover_connected_sensors() {
        let (_, p) = runner::run_owned(smoke(1), DaTreeProtocol::default());
        // Virtually all sensors in the dense smoke deployment get a parent.
        assert!(p.parent.len() > 100, "attached {}", p.parent.len());
    }

    #[test]
    fn delivers_data_and_repairs_under_mobility() {
        let mut cfg = smoke(2);
        cfg.mobility.max_speed = 4.0;
        let (summary, p) = runner::run_owned(cfg, DaTreeProtocol::default());
        assert!(summary.delivery_ratio > 0.3, "{summary:?}");
        assert!(p.stats.repairs > 0, "mobility must break parent links: {:?}", p.stats);
        assert!(p.stats.retransmissions > 0);
    }

    #[test]
    fn construction_is_cheap() {
        let (summary, _) = runner::run_owned(smoke(3), DaTreeProtocol::default());
        // One broadcast per node: construction well under communication.
        assert!(summary.energy_construction_j > 0.0);
        assert!(summary.energy_construction_j < summary.energy_communication_j);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = runner::run_owned(smoke(4), DaTreeProtocol::default());
        let (b, _) = runner::run_owned(smoke(4), DaTreeProtocol::default());
        assert_eq!(a, b);
    }
}
