//! Comparative mechanics tests: each baseline recovers the way the paper
//! describes, and their costs order as Section IV argues.

use refer_baselines::{DaTreeProtocol, DdearProtocol, KautzOverlayProtocol};
use wsan_sim::{runner, SimConfig, SimDuration};

fn cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::smoke();
    cfg.warmup = SimDuration::from_secs(15);
    cfg.duration = SimDuration::from_secs(90);
    cfg.seed = seed;
    cfg
}

#[test]
fn datree_faults_mean_retransmissions() {
    let mut clean = cfg(31);
    clean.mobility.max_speed = 0.0;
    let mut faulty = clean.clone();
    faulty.faults.count = 30;
    let (_, p_clean) = runner::run_owned(clean, DaTreeProtocol::default());
    let (_, p_faulty) = runner::run_owned(faulty, DaTreeProtocol::default());
    assert!(
        p_faulty.stats.retransmissions > p_clean.stats.retransmissions,
        "faults {} vs clean {}",
        p_faulty.stats.retransmissions,
        p_clean.stats.retransmissions
    );
    // Every successful repair either schedules a retransmission or gives
    // up because the packet exhausted its attempts.
    assert_eq!(
        p_faulty.stats.repairs,
        p_faulty.stats.retransmissions + p_faulty.stats.drop_exhausted,
        "{:?}",
        p_faulty.stats
    );
}

#[test]
fn ddear_only_heads_keep_actuator_paths() {
    let (_, p) = runner::run_owned(cfg(32), DdearProtocol::default());
    assert!(p.stats.heads > 5, "heads elected: {}", p.stats.heads);
    // Heads are a small minority: the mesh backbone the paper describes.
    assert!(p.stats.heads < 120, "heads stay sparse: {}", p.stats.heads);
}

#[test]
fn overlay_mobility_multiplies_repairs() {
    let mut slow = cfg(33);
    slow.mobility.max_speed = 0.5;
    let mut fast = cfg(33);
    fast.mobility.max_speed = 5.0;
    let (_, p_slow) = runner::run_owned(slow, KautzOverlayProtocol::default());
    let (_, p_fast) = runner::run_owned(fast, KautzOverlayProtocol::default());
    assert!(
        p_fast.stats.path_repairs > p_slow.stats.path_repairs,
        "fast {} vs slow {}",
        p_fast.stats.path_repairs,
        p_slow.stats.path_repairs
    );
}

#[test]
fn overlay_builds_most_arcs_in_a_connected_deployment() {
    let (_, p) = runner::run_owned(cfg(34), KautzOverlayProtocol::default());
    // 4 cells x 24 arcs, minus actuator-actuator arcs shared across cells
    // (deduplicated by endpoint pair): expect the vast majority built.
    assert!(p.stats.arcs_built >= 70, "arcs built: {}", p.stats.arcs_built);
}

#[test]
fn recovery_energy_ordering_under_faults() {
    // With faults active, DaTree's per-sensor recovery floods cost more
    // communication energy than D-DEAR's head-only rebuilds.
    let mut c = cfg(35);
    c.faults.count = 10;
    let (datree, _) = runner::run_owned(c.clone(), DaTreeProtocol::default());
    let (ddear, _) = runner::run_owned(c, DdearProtocol::default());
    assert!(
        datree.energy_communication_j > ddear.energy_communication_j * 0.8,
        "datree {} vs ddear {}",
        datree.energy_communication_j,
        ddear.energy_communication_j
    );
}
