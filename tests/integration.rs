//! Cross-crate integration tests: the four systems on the shared
//! substrate, and the paper's headline comparative claims at smoke scale.

use refer_wsan::refer::{ReferConfig, ReferProtocol};
use refer_wsan::refer_baselines::{DaTreeProtocol, DdearProtocol, KautzOverlayProtocol};
use refer_wsan::wsan_sim::{runner, RunSummary, SimConfig, SimDuration};

fn scenario(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper();
    cfg.warmup = SimDuration::from_secs(20);
    cfg.duration = SimDuration::from_secs(120);
    cfg.seed = seed;
    cfg
}

fn run_all(seed: u64) -> [RunSummary; 4] {
    [
        runner::run(scenario(seed), &mut ReferProtocol::new(ReferConfig::default())),
        runner::run(scenario(seed), &mut DaTreeProtocol::default()),
        runner::run(scenario(seed), &mut DdearProtocol::default()),
        runner::run(scenario(seed), &mut KautzOverlayProtocol::default()),
    ]
}

#[test]
fn all_four_systems_deliver_data() {
    let [refer, datree, ddear, overlay] = run_all(1);
    for (name, s) in [
        ("REFER", &refer),
        ("DaTree", &datree),
        ("D-DEAR", &ddear),
        ("Kautz-overlay", &overlay),
    ] {
        assert!(s.delivery_ratio > 0.3, "{name} barely delivers: {s:?}");
        assert!(s.energy_communication_j > 0.0, "{name} consumed no energy");
    }
}

#[test]
fn construction_energy_ordering_matches_figure_10() {
    // Kautz-overlay >> REFER > D-DEAR > DaTree.
    let [refer, datree, ddear, overlay] = run_all(2);
    assert!(
        overlay.energy_construction_j > refer.energy_construction_j,
        "overlay {} vs refer {}",
        overlay.energy_construction_j,
        refer.energy_construction_j
    );
    assert!(
        refer.energy_construction_j > ddear.energy_construction_j,
        "refer {} vs ddear {}",
        refer.energy_construction_j,
        ddear.energy_construction_j
    );
    assert!(
        ddear.energy_construction_j > datree.energy_construction_j,
        "ddear {} vs datree {}",
        ddear.energy_construction_j,
        datree.energy_construction_j
    );
}

#[test]
fn refer_spends_least_communication_energy() {
    // Figure 5/9's headline: REFER's topology consistency and ID-only
    // recovery make it the cheapest communicator.
    let [refer, datree, ddear, overlay] = run_all(3);
    assert!(refer.energy_communication_j < datree.energy_communication_j);
    assert!(refer.energy_communication_j < ddear.energy_communication_j);
    assert!(refer.energy_communication_j < overlay.energy_communication_j);
}

#[test]
fn overlay_without_topology_consistency_is_slowest() {
    // Figure 6/8: application-layer Kautz pays multi-hop physical paths
    // per overlay hop.
    let [refer, _, _, overlay] = run_all(4);
    assert!(
        overlay.mean_delay_all_s > refer.mean_delay_all_s,
        "overlay {} vs refer {}",
        overlay.mean_delay_all_s,
        refer.mean_delay_all_s
    );
    assert!(overlay.throughput_bps < refer.throughput_bps);
}

#[test]
fn refer_throughput_resists_faults() {
    // Figure 7 at the 10-faulty-node end: REFER keeps its throughput.
    let mut faulty = scenario(5);
    faulty.faults.count = 10;
    let clean = runner::run(scenario(5), &mut ReferProtocol::new(ReferConfig::default()));
    let dirty = runner::run(faulty, &mut ReferProtocol::new(ReferConfig::default()));
    assert!(
        dirty.throughput_bps > clean.throughput_bps * 0.7,
        "clean {} vs faulty {}",
        clean.throughput_bps,
        dirty.throughput_bps
    );
}

#[test]
fn constant_degree_balances_load_better_than_trees() {
    // Kautz cells bound every member's degree by d, so no sensor becomes
    // the funnel a tree's root-adjacent relays are: REFER's hottest sensor
    // burns less than DaTree's, and its energy spread is fairer.
    let [refer, datree, _, _] = run_all(6);
    assert!(
        refer.hotspot_energy_j < datree.hotspot_energy_j,
        "REFER hotspot {} vs DaTree {}",
        refer.hotspot_energy_j,
        datree.hotspot_energy_j
    );
    assert!(
        refer.energy_fairness > datree.energy_fairness,
        "REFER fairness {} vs DaTree {}",
        refer.energy_fairness,
        datree.energy_fairness
    );
}

#[test]
fn facade_reexports_compose() {
    // The kautz theory, the CAN and the simulator are reachable through
    // the facade and interoperate.
    use refer_wsan::can_dht::{CanNetwork, Coord};
    use refer_wsan::kautz::{greedy_path, KautzGraph};

    let g = KautzGraph::new(2, 3).expect("valid");
    let nodes: Vec<_> = g.nodes().collect();
    let path = greedy_path(&nodes[0], &nodes[5]).expect("routable");
    assert!(!path.is_empty());

    let mut can = CanNetwork::new();
    let a = can.join(Coord::new(0.2, 0.8)).expect("bootstrap");
    can.join(Coord::new(0.9, 0.1)).expect("join");
    assert!(can.route(a, &Coord::new(0.9, 0.1)).is_some());
}
