//! # refer-wsan — a reproduction of REFER (Li & Shen, ICDCS 2012)
//!
//! *A Kautz-based Real-time, Fault-tolerant and EneRgy-efficient Wireless
//! Sensor and Actuator Network.*
//!
//! This facade re-exports the workspace crates:
//!
//! * [`kautz`] — Kautz digraph theory: identifiers, enumeration, the greedy
//!   shortest protocol, and Theorem 3.8's ID-only `d`-disjoint-path planner.
//! * [`wsan_sim`] — the discrete-event WSAN simulator substrate (mobility,
//!   unit-disk radio with queueing, per-packet energy metering, fault
//!   injection, QoS metrics).
//! * [`can_dht`] — a Content-Addressable Network, REFER's inter-cell tier.
//! * [`refer`] — the system itself: cell partitioning, Kautz embedding,
//!   topology maintenance and the fault-tolerant routing protocol.
//! * [`refer_baselines`] — the paper's comparison systems: DaTree, D-DEAR
//!   and the application-layer Kautz overlay.
//!
//! # Quickstart
//!
//! ```
//! use refer_wsan::refer::{ReferConfig, ReferProtocol};
//! use refer_wsan::wsan_sim::{runner, SimConfig, SimDuration};
//!
//! let mut cfg = SimConfig::smoke();
//! cfg.duration = SimDuration::from_secs(20);
//! let mut protocol = ReferProtocol::new(ReferConfig::default());
//! let summary = runner::run(cfg, &mut protocol);
//! println!("QoS throughput: {:.0} B/s", summary.throughput_bps);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness regenerating the paper's Figures 4-11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use can_dht;
pub use kautz;
pub use refer;
pub use refer_baselines;
pub use wsan_sim;
