//! Event tracing: record what happened on the air during a REFER run and
//! print a condensed timeline.
//!
//! Demonstrates protocol composition: a thin wrapper enables the
//! simulator's trace buffer at init and delegates everything to REFER.
//!
//! ```text
//! cargo run --example trace_timeline --release
//! ```

use refer_wsan::refer::{ReferConfig, ReferProtocol};
use refer_wsan::wsan_sim::trace::TraceEvent;
use refer_wsan::wsan_sim::{
    runner, Ctx, DataId, Message, NodeId, Protocol, SimConfig, SimDuration,
};

/// Wraps any protocol and records the simulator's event trace.
struct Traced<P> {
    inner: P,
    events: Vec<TraceEvent>,
}

impl<P: Protocol> Protocol for Traced<P> {
    type Payload = P::Payload;
    fn name(&self) -> &'static str {
        "Traced"
    }
    fn on_init(&mut self, ctx: &mut Ctx<P::Payload>) {
        ctx.enable_trace(50_000);
        self.inner.on_init(ctx);
    }
    fn on_message(&mut self, ctx: &mut Ctx<P::Payload>, at: NodeId, msg: Message<P::Payload>) {
        self.inner.on_message(ctx, at, msg);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<P::Payload>, at: NodeId, tag: u64) {
        self.inner.on_timer(ctx, at, tag);
        // Periodically drain so the bounded buffer never evicts.
        self.events.extend(ctx.take_trace());
    }
    fn on_app_data(&mut self, ctx: &mut Ctx<P::Payload>, src: NodeId, data: DataId) {
        self.inner.on_app_data(ctx, src, data);
    }
}

fn main() {
    let mut cfg = SimConfig::smoke();
    cfg.warmup = SimDuration::from_secs(5);
    cfg.duration = SimDuration::from_secs(20);
    cfg.faults.count = 6;
    cfg.traffic.rate_bps = 24_000.0;
    cfg.seed = 9;

    let traced: Traced<ReferProtocol> =
        Traced { inner: ReferProtocol::new(ReferConfig::default()), events: Vec::new() };
    let (summary, mut traced) = runner::run_owned::<Traced<ReferProtocol>>(cfg, traced);
    // The last batch stays in the buffer until drained.
    let events = std::mem::take(&mut traced.events);

    let mut sends = 0u64;
    let mut failures = 0u64;
    let mut broadcasts = 0u64;
    let mut deliveries = 0u64;
    let mut fault_rotations = 0u64;
    for e in &events {
        match e {
            TraceEvent::Send { .. } => sends += 1,
            TraceEvent::SendFailed { .. } => failures += 1,
            TraceEvent::Broadcast { .. } => broadcasts += 1,
            TraceEvent::Delivered { .. } => deliveries += 1,
            TraceEvent::FaultRotation { .. } => fault_rotations += 1,
            _ => {}
        }
    }
    println!("traced {} events over the run:", events.len());
    println!("  unicast sends:    {sends}");
    println!("  link failures:    {failures}");
    println!("  broadcasts:       {broadcasts}");
    println!("  deliveries:       {deliveries}");
    println!("  fault rotations:  {fault_rotations}");
    println!();
    println!("first link failure and the recovery around it:");
    if let Some(pos) = events.iter().position(|e| matches!(e, TraceEvent::SendFailed { .. })) {
        for e in events.iter().skip(pos.saturating_sub(1)).take(6) {
            match e {
                TraceEvent::Send { at, from, to, .. } => {
                    println!("  {at}  {from} -> {to}  (send)")
                }
                TraceEvent::SendFailed { at, from, to } => {
                    println!("  {at}  {from} -> {to}  (LINK FAILED; relay reroutes)")
                }
                TraceEvent::Broadcast { at, from, receivers, .. } => {
                    println!("  {at}  {from} broadcast to {receivers} receivers")
                }
                TraceEvent::Delivered { at, node, delay_s, hops, .. } => {
                    println!(
                        "  {at}  delivered at {node} after {:.1} ms ({hops} hops)",
                        delay_s * 1e3
                    )
                }
                other => println!("  {}  {other:?}", other.at()),
            }
        }
    }
    println!("\nrun summary: {:.0} B/s QoS, {:.1}% delivered", summary.throughput_bps,
        summary.delivery_ratio * 100.0);
}
