//! Congestion vs routing strategy: the Faber–Streib effect and its limits.
//!
//! The Kautz fabric (`refer_baselines::fabric_config`) maps one sensor to
//! each vertex of `K(2, 8)` (384 nodes) and routes every packet over the
//! overlay arcs, on the sharded engine — the same setup as
//! `perfbench`/`compare` (DESIGN.md §13). Two traffic matrices, two
//! routing strategies:
//!
//! - Under **all-to-all** load, greedy shortest routing concentrates flows
//!   on structurally hot arcs; Faber–Streib *regular* routing pays ~1
//!   extra hop to spread the same flows uniformly, so its queue tail stays
//!   flat well past the point where shortest's hottest vertex saturates.
//! - Under a **hotspot** matrix (32 popular sensors draw 60% of traffic),
//!   the verdict flips: every regular route to destination `v` ends with
//!   the *same* vertex sequence (the prefixes of `v`) regardless of the
//!   source, so a popular destination's traffic funnels through one
//!   in-arc chain. Shortest routing exploits source/destination overlap to
//!   enter `v` from all of its predecessors and wins.
//!
//! Regular routing uniformizes *uniform* matrices — which strategy is
//! right depends on the workload, not just the topology.
//!
//! ```text
//! cargo run --example hotspot_congestion --release
//! ```

use refer_wsan::refer_baselines::{fabric_config, KautzFabricProtocol};
use refer_wsan::wsan_sim::{
    run_sharded, Engine, RoutingStrategy, ShardedConfig, SimDuration, TrafficPattern,
};

fn main() {
    println!("K(2,8) fabric congestion: all-to-all vs hotspot, shortest vs regular\n");
    let workloads: [(&str, TrafficPattern, [f64; 2]); 2] = [
        ("all2all", TrafficPattern::All2All, [4_200.0, 5_200.0]),
        ("hotspot", TrafficPattern::Hotspot { targets: 32, skew: 0.6 }, [1_500.0, 3_000.0]),
    ];
    println!(
        "{:>8} {:>9} | {:>8} | {:>7} {:>9} {:>9} {:>8} {:>6} {:>6}",
        "workload", "load(pps)", "routing", "deliv", "q p50", "q p99", "hotlink", "miss", "cdrops"
    );
    for (name, pattern, loads) in workloads {
        for offered in loads {
            for routing in [RoutingStrategy::Shortest, RoutingStrategy::Regular] {
                let mut cfg = fabric_config(2, 8, offered);
                cfg.traffic.pattern = pattern;
                cfg.routing = routing;
                cfg.warmup = SimDuration::from_secs(5);
                cfg.duration = SimDuration::from_secs(15);
                cfg.engine =
                    Engine::Sharded(ShardedConfig { shards: 0, threads: 1, window_micros: 0 });
                let s = run_sharded(cfg, &mut KautzFabricProtocol::new(2, 8));
                println!(
                    "{:>8} {:>9.0} | {:>8} | {:>6.1}% {:>7.1}ms {:>7.1}ms {:>8.3} {:>5.1}% {:>6}",
                    name,
                    offered,
                    format!("{routing:?}"),
                    s.delivery_ratio * 100.0,
                    s.queue_delay_p50_s * 1e3,
                    s.queue_delay_p99_s * 1e3,
                    s.hot_link_utilization,
                    s.deadline_miss_ratio * 100.0,
                    s.congestion_drops,
                );
            }
        }
        println!();
    }
    println!("all-to-all: regular routing's uniform arc load keeps the p99 queue");
    println!("wait and deadline misses flat after shortest's hot arcs saturate.");
    println!("hotspot: regular funnels each popular destination's flows through");
    println!("one source-invariant path tail, so shortest wins — match the");
    println!("routing strategy to the traffic matrix, not just the topology.");
}
