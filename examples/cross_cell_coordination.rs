//! Cross-cell actuator coordination over the CAN upper tier
//! (Section III-B3).
//!
//! Half of the sensed events are addressed to a *remote* cell's actuator —
//! e.g. a sprinkler in another wing must pre-charge when smoke is detected
//! here. Frames travel sensor -> local cell actuator (Kautz routing) ->
//! destination cell (CAN CID routing) -> destination actuator.
//!
//! ```text
//! cargo run --example cross_cell_coordination --release
//! ```

use refer_wsan::refer::{ReferConfig, ReferProtocol};
use refer_wsan::wsan_sim::{runner, SimConfig, SimDuration};

fn main() {
    let rcfg = ReferConfig { cross_cell_fraction: 0.5, ..Default::default() };

    let mut cfg = SimConfig::paper();
    cfg.warmup = SimDuration::from_secs(20);
    cfg.duration = SimDuration::from_secs(120);
    cfg.traffic.rate_bps = 200_000.0;
    cfg.seed = 12;

    let mut protocol = ReferProtocol::new(rcfg);
    let summary = runner::run(cfg, &mut protocol);

    println!("cross-cell coordination over the CAN tier (50% remote events):\n");
    let layout = protocol.layout().expect("cells formed");
    println!("  cells:              {}", layout.cells.len());
    println!("  inter-cell hops:    {}", protocol.stats.inter_cell_hops);
    println!("  QoS throughput:     {:.0} B/s", summary.throughput_bps);
    println!("  mean delay:         {:.1} ms", summary.mean_delay_s * 1e3);
    println!("  delivery ratio:     {:.1} %", summary.delivery_ratio * 100.0);
    println!();
    println!("the DHT keeps inter-cell routing at O(sqrt(cells)) actuator hops,");
    println!("so remote events cost only a few extra transmissions.");
    assert!(protocol.stats.inter_cell_hops > 0, "remote traffic used the tier");
}
