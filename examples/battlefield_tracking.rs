//! Battlefield target tracking: the paper's large-scale motivating
//! scenario (Section I) — densely deployed mobile sensors report detected
//! objects to actuators that intercept them.
//!
//! Sweeps the deployment size and compares all four systems on QoS
//! throughput and total energy, reproducing the scalability argument of
//! Figures 8-11 in miniature.
//!
//! ```text
//! cargo run --example battlefield_tracking --release
//! ```

use refer_wsan::refer::{ReferConfig, ReferProtocol};
use refer_wsan::refer_baselines::{DaTreeProtocol, DdearProtocol, KautzOverlayProtocol};
use refer_wsan::wsan_sim::{runner, RunSummary, SimConfig, SimDuration};

fn battlefield(sensors: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper();
    cfg.sensors = sensors;
    cfg.mobility.max_speed = 3.0; // patrolling sensors
    cfg.faults.count = 6; // jamming / destruction
    cfg.warmup = SimDuration::from_secs(20);
    cfg.duration = SimDuration::from_secs(120);
    cfg.seed = seed;
    cfg
}

fn main() {
    println!("battlefield tracking: scalability of the four systems\n");
    for sensors in [100usize, 250, 400] {
        println!("-- {sensors} sensors --");
        let runs: Vec<(&str, RunSummary)> = vec![
            ("REFER", runner::run(battlefield(sensors, 3), &mut ReferProtocol::new(ReferConfig::default()))),
            ("DaTree", runner::run(battlefield(sensors, 3), &mut DaTreeProtocol::default())),
            ("D-DEAR", runner::run(battlefield(sensors, 3), &mut DdearProtocol::default())),
            ("Kautz-overlay", runner::run(battlefield(sensors, 3), &mut KautzOverlayProtocol::default())),
        ];
        println!(
            "{:>15} {:>14} {:>10} {:>13} {:>13} {:>9} {:>9}",
            "system", "QoS thr (B/s)", "delay", "comm (J)", "constr (J)", "hotspot", "fairness"
        );
        for (name, s) in runs {
            println!(
                "{:>15} {:>14.0} {:>8.1}ms {:>13.0} {:>13.0} {:>8.0}J {:>9.2}",
                name,
                s.throughput_bps,
                s.mean_delay_s * 1e3,
                s.energy_communication_j,
                s.energy_construction_j,
                s.hotspot_energy_j,
                s.energy_fairness,
            );
        }
        println!();
    }
    println!("REFER's delay and energy stay nearly flat as the field grows;");
    println!("tree and overlay baselines pay for longer paths and recovery floods.");
}
