//! Draws the embedded Kautz topology as an SVG map: cells, actuators,
//! Kautz members and the overlay arcs that are physical links.
//!
//! Writes `results/topology.svg`.
//!
//! ```text
//! cargo run --example visualize_topology --release
//! ```

use refer_wsan::kautz::KautzGraph;
use refer_wsan::refer::{ReferConfig, ReferProtocol};
use refer_wsan::wsan_sim::{runner, SimConfig, SimDuration};
use std::fmt::Write as _;

const CELL_COLORS: [&str; 6] = ["#0072b2", "#d55e00", "#009e73", "#cc79a7", "#56b4e9", "#e69f00"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SimConfig::paper();
    cfg.warmup = SimDuration::from_secs(10);
    cfg.duration = SimDuration::from_secs(10); // we only need construction
    cfg.seed = 42;
    let (_, protocol) = runner::run_owned(cfg.clone(), ReferProtocol::new(ReferConfig::default()));

    let scale = 1.4; // pixels per meter
    let (w, h) = (cfg.area.width * scale, cfg.area.height * scale);
    let mut svg = String::new();
    writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" font-family="sans-serif">"#
    )?;
    writeln!(svg, r##"<rect width="{w}" height="{h}" fill="#fcfcfc"/>"##)?;

    let graph = KautzGraph::new(2, 3).expect("valid parameters");
    for snap in &protocol.snapshots {
        let color = CELL_COLORS[snap.cell % CELL_COLORS.len()];
        let pos = |kid: &refer_wsan::kautz::KautzId| {
            snap.members
                .iter()
                .find(|(k, ..)| k == kid)
                .map(|(_, _, p, _)| (p.x * scale, p.y * scale))
        };
        // Arcs that are physical links (<= sensor range).
        for (u, v) in graph.arcs() {
            let (Some((x1, y1)), Some((x2, y2))) = (pos(&u), pos(&v)) else { continue };
            let d = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt() / scale;
            if d <= cfg.sensor_range {
                writeln!(
                    svg,
                    r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{color}" stroke-width="1" opacity="0.45"/>"#
                )?;
            }
        }
        for (kid, _, p, is_actuator) in &snap.members {
            let (x, y) = (p.x * scale, p.y * scale);
            if *is_actuator {
                writeln!(
                    svg,
                    r#"<rect x="{:.1}" y="{:.1}" width="12" height="12" fill="black"/>"#,
                    x - 6.0,
                    y - 6.0
                )?;
            } else {
                writeln!(svg, r#"<circle cx="{x:.1}" cy="{y:.1}" r="5" fill="{color}"/>"#)?;
            }
            writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="10">{kid}</text>"#,
                x + 7.0,
                y - 4.0
            )?;
        }
        let (cx, cy) = (snap.centroid.x * scale, snap.centroid.y * scale);
        writeln!(
            svg,
            r#"<text x="{cx:.1}" y="{cy:.1}" font-size="14" fill="{color}" font-weight="bold">cell {}</text>"#,
            snap.cell
        )?;
    }
    writeln!(svg, "</svg>")?;

    std::fs::create_dir_all("results")?;
    std::fs::write("results/topology.svg", &svg)?;
    println!(
        "wrote results/topology.svg: {} cells, {} members drawn",
        protocol.snapshots.len(),
        protocol.snapshots.iter().map(|s| s.members.len()).sum::<usize>()
    );
    println!("squares = actuators (shared between cells), dots = Kautz sensors,");
    println!("lines = overlay arcs that are physical links at construction time.");
    Ok(())
}
