//! Fault-tolerant routing, hop by hop: a pure-algorithm walkthrough of
//! Theorem 3.8 (no simulator).
//!
//! Reproduces the worked example of Section III-C2: node 0123 sends to
//! 2301 in K(4, 4); successive relays fail and the protocol locally picks
//! the next-shortest disjoint path from the IDs alone, including the
//! conflict-node rule of Proposition 3.7.
//!
//! ```text
//! cargo run --example fault_tolerant_routing
//! ```

use refer_wsan::kautz::disjoint::{disjoint_paths, plan_route};
use refer_wsan::kautz::{KautzId, PathClass};
use std::collections::HashSet;

fn show(path: &[KautzId]) -> String {
    path.iter().map(ToString::to_string).collect::<Vec<_>>().join(" -> ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let u = KautzId::parse("0123", 4)?;
    let v = KautzId::parse("2301", 4)?;

    println!("routing {u} -> {v} in K(4, 4)\n");
    let plans = disjoint_paths(&u, &v)?;
    println!("the {} disjoint paths, computed from the two IDs only:", plans.len());
    for plan in &plans {
        let route = plan_route(plan, &u, &v)?;
        println!(
            "  [{}] {:?}: {}",
            plan.length,
            plan.class,
            show(&route)
        );
    }

    // Simulate successive relay failures: the sender walks its plan list.
    println!("\nfailure walkthrough:");
    let mut failed: HashSet<KautzId> = HashSet::new();
    for kill in ["1230", "1232"] {
        failed.insert(KautzId::parse(kill, 4)?);
        let chosen = plans
            .iter()
            .find(|p| !failed.contains(&p.successor))
            .expect("some successor survives");
        println!(
            "  {kill} fails -> {u} switches to successor {} ({} hops{})",
            chosen.successor,
            chosen.length,
            chosen
                .forced_digit
                .map(|d| format!(", stamps forced digit {d} for the conflict relay"))
                .unwrap_or_default()
        );
    }

    // The conflict path in full, with Proposition 3.7's forced hop.
    let conflict = plans
        .iter()
        .find(|p| p.class == PathClass::Conflict)
        .expect("u_{k-l} != v_{l+1} here, so a conflict path exists");
    let route = plan_route(conflict, &u, &v)?;
    println!(
        "\nconflict path via {} (forced digit {}): {}",
        conflict.successor,
        conflict.forced_digit.expect("conflict paths carry one"),
        show(&route)
    );
    println!(
        "without the forced hop it would intersect the shortest path at 1230 \
         (Proposition 3.4) — the forced digit keeps all {} paths disjoint.",
        plans.len()
    );
    Ok(())
}
