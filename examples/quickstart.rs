//! Quickstart: the Kautz theory in five lines, then a full REFER
//! simulation of the paper's scenario at reduced duration.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use refer_wsan::kautz::{disjoint_paths, greedy_path, KautzGraph, KautzId};
use refer_wsan::refer::{ReferConfig, ReferProtocol};
use refer_wsan::wsan_sim::{runner, SimConfig, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The Kautz graph K(2, 3): the paper's per-cell overlay. ------
    let graph = KautzGraph::new(2, 3).expect("valid parameters");
    println!(
        "K(2,3): {} vertices, {} arcs, Moore bound {}",
        graph.node_count(),
        graph.edge_count(),
        graph.moore_bound()
    );

    // --- 2. ID-only routing (Theorem 3.8). ------------------------------
    let u = KautzId::parse("0123", 4)?;
    let v = KautzId::parse("2301", 4)?;
    let shortest = greedy_path(&u, &v)?;
    println!(
        "shortest {u} -> {v}: {}",
        shortest.iter().map(ToString::to_string).collect::<Vec<_>>().join(" -> ")
    );
    println!("all {} disjoint paths, straight from the IDs:", u.degree());
    for plan in disjoint_paths(&u, &v)? {
        println!(
            "  via {} in {} hops ({:?}{})",
            plan.successor,
            plan.length,
            plan.class,
            plan.forced_digit
                .map(|d| format!(", forced digit {d}"))
                .unwrap_or_default()
        );
    }

    // --- 3. A REFER simulation (the paper's scenario, shortened). -------
    let mut cfg = SimConfig::paper();
    cfg.warmup = SimDuration::from_secs(20);
    cfg.duration = SimDuration::from_secs(100);
    cfg.seed = 7;
    let mut protocol = ReferProtocol::new(ReferConfig::default());
    let summary = runner::run(cfg, &mut protocol);
    println!("\nREFER, 200 sensors / 5 actuators / 4 cells of K(2,3), 100 s:");
    println!("  cells built:        {}", protocol.stats.cells_ready);
    println!("  QoS throughput:     {:.0} B/s", summary.throughput_bps);
    println!("  mean delay:         {:.1} ms", summary.mean_delay_s * 1e3);
    println!("  delivery ratio:     {:.1} %", summary.delivery_ratio * 100.0);
    println!("  energy (comm):      {:.0} J", summary.energy_communication_j);
    println!("  energy (construct): {:.0} J", summary.energy_construction_j);
    println!("  alternate paths:    {}", protocol.stats.alt_path_switches);
    println!("  node replacements:  {}", protocol.stats.replacements);
    Ok(())
}
