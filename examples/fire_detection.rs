//! Fire detection: the paper's motivating application (Section I).
//!
//! Smoke detectors densely deployed in a building report to sprinkler
//! actuators. A fire front progressively destroys sensors (fault
//! injection), so the routing layer must keep alarm packets flowing within
//! the real-time deadline while nodes die around the event.
//!
//! The example contrasts *how* REFER and DaTree recover: REFER switches to
//! an alternate disjoint path locally (no extra messages), DaTree
//! broadcasts toward its root and retransmits from the source.
//!
//! ```text
//! cargo run --example fire_detection --release
//! ```

use refer_wsan::refer::{ReferConfig, ReferProtocol};
use refer_wsan::refer_baselines::DaTreeProtocol;
use refer_wsan::wsan_sim::{runner, SimConfig, SimDuration};

/// Builds the "instrumented building" scenario: static, very dense smoke
/// detectors, with `damaged` of them burned out at any time.
fn building(damaged: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper();
    cfg.sensors = 240;
    cfg.mobility.max_speed = 0.0; // detectors are bolted to the ceiling
    cfg.faults.count = damaged;
    cfg.faults.rotation = SimDuration::from_secs(10); // the front advances
    cfg.warmup = SimDuration::from_secs(20);
    cfg.duration = SimDuration::from_secs(120);
    cfg.traffic.rate_bps = 400_000.0; // alarm bursts
    cfg.seed = seed;
    cfg
}

fn main() {
    println!("fire detection: alarm delivery while the fire destroys detectors\n");
    println!(
        "{:>8} | {:>7} {:>7} {:>9} {:>10} | {:>7} {:>7} {:>9} {:>12}",
        "damaged", "REFER%", "delay", "reroutes", "repl.", "DaTr.%", "delay", "repairs", "retransmits"
    );
    for damaged in [0usize, 15, 30, 60] {
        let (r, refer) =
            runner::run_owned(building(damaged, 5), ReferProtocol::new(ReferConfig::default()));
        let (d, datree) = runner::run_owned(building(damaged, 5), DaTreeProtocol::default());
        println!(
            "{:>8} | {:>6.1}% {:>5.0}ms {:>9} {:>10} | {:>6.1}% {:>5.0}ms {:>9} {:>12}",
            damaged,
            r.qos_delivery_ratio * 100.0,
            r.mean_delay_s * 1e3,
            refer.stats.alt_path_switches,
            refer.stats.replacements,
            d.qos_delivery_ratio * 100.0,
            d.mean_delay_s * 1e3,
            datree.stats.repairs,
            datree.stats.retransmissions,
        );
    }
    println!("\nREFER absorbs each dead detector with a local alternate-path switch");
    println!("(zero recovery messages); every DaTree repair is a broadcast toward");
    println!("the root plus a source retransmission — energy and latency per event.");
}
